"""The CARMOT runtime engine and its VM hook adapter.

:class:`CarmotRuntime` owns the per-ROI PSECs, the ASMT, and the batching
pipeline; :class:`CarmotHooks` is the :class:`repro.vm.hooks.ExecutionHooks`
implementation that instrumented modules run with.  The hooks charge
main-thread costs (event pushes, callstack captures, Pin tracing) per the
cost model; FSA processing happens in the pipeline and is not charged to
the program's critical path, modelling the shadow-profiling design of §4.6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import DegradedResult
from repro.ir.instructions import AccessKind, SourceLoc, VarInfo
from repro.ir.module import Module
from repro.resilience.degradation import (
    ACTION_CLASSIFY_ONLY,
    ACTION_CONSERVATIVE,
    ACTION_DELAYED,
    ACTION_RETRIED,
    DegradationRecord,
    DegradationReport,
)
from repro.resilience.faultinject import FaultInjector
from repro.runtime.asmt import Asmt, AsmtEntry
from repro.runtime.config import RuntimeConfig
from repro.runtime.events import (
    AccessEvent,
    AllocEvent,
    ClassifyEvent,
    EscapeEvent,
    FreeEvent,
)
from repro.runtime.pipeline import Batch, BatchingPipeline, Failure
from repro.runtime.psec import Psec, PseKey
from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vm.hooks import ExecutionHooks
from repro.vm.memory import MemoryObject

#: Conservative set letters applied when an access event is lost or its
#: ROI is over budget: a read forces Input; a write forces Output plus
#: Transfer (never Cloneable — the §4.2 merge direction).  The PSE lands
#: in a conservative superset of its true Sets, never nowhere.
_CONSERVATIVE_READ = "I"
_CONSERVATIVE_WRITE = "OT"


@dataclass
class RuntimeStats:
    """Counters used by tests and the experiment harnesses."""

    access_events: int = 0
    aggregated_events: int = 0
    classify_events: int = 0
    alloc_events: int = 0
    escape_events: int = 0
    pin_accesses: int = 0
    pin_attaches: int = 0
    callstack_captures: int = 0
    events_ignored_outside_roi: int = 0


class CarmotRuntime:
    """Builds one PSEC per ROI from the event stream."""

    def __init__(self, module: Module, config: Optional[RuntimeConfig] = None):
        self.module = module
        self.config = config or RuntimeConfig()
        self.asmt = Asmt()
        self.stats = RuntimeStats()
        self.psecs: Dict[int, Psec] = {}
        for roi_id, info in module.rois.items():
            self.psecs[roi_id] = Psec(
                roi_id=roi_id, roi_name=info.name, abstraction=info.abstraction
            )
        self._active: List[Tuple[int, int, int]] = []  # (roi, inv, epoch)
        self._invocations: Dict[int, int] = {roi_id: 0 for roi_id in module.rois}
        self._epochs: Dict[int, int] = {roi_id: 0 for roi_id in module.rois}
        resilience = self.config.resilience
        self._resilience = resilience
        self.degradation = DegradationReport()
        self.injector: Optional[FaultInjector] = (
            FaultInjector(self.config.fault_plan)
            if self.config.fault_plan is not None else None
        )
        #: Per-ROI event budget state (only consulted when a budget is set,
        #: keeping the default hot path untouched).
        self._event_budget = resilience.max_events_per_roi > 0
        self._roi_event_counts: Dict[int, int] = {
            roi_id: 0 for roi_id in module.rois
        }
        self._budget_tripped: Set[int] = set()
        self.pipeline = BatchingPipeline(
            batch_size=self.config.batch_size,
            process=self._process_batch,
            postprocess=self._postprocess_batch,
            threaded=self.config.threaded,
            worker_count=self.config.worker_count,
            max_queue_batches=resilience.max_queue_batches,
            queue_policy=resilience.queue_policy,
            max_retries=resilience.max_retries,
            retry_backoff=resilience.retry_backoff,
            degrade=resilience.degrade,
            on_degraded=self._apply_degraded_batch,
            on_retry=self._note_retry,
            injector=self.injector,
        )

    # -- ROI lifecycle ------------------------------------------------------

    def roi_begin(self, roi_id: int) -> None:
        self._invocations[roi_id] += 1
        self._active.append(
            (roi_id, self._invocations[roi_id], self._epochs[roi_id])
        )
        self.psecs[roi_id].invocations += 1

    def roi_reset(self, roi_id: int) -> None:
        """A new epoch: the ROI's loop is being entered afresh (§4.2)."""
        self._epochs[roi_id] += 1

    def roi_end(self, roi_id: int) -> None:
        for index in range(len(self._active) - 1, -1, -1):
            if self._active[index][0] == roi_id:
                del self._active[index]
                return

    @property
    def any_roi_active(self) -> bool:
        return bool(self._active)

    def active_snapshot(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(self._active)

    def finish(self) -> None:
        self.pipeline.close()
        for seq, delay in self.pipeline.slow_batches:
            self.degradation.add(DegradationRecord(
                batch_seq=seq, kind="slow", rois=(), events=0,
                action=ACTION_DELAYED, sets_complete=True,
                use_callstacks_complete=True,
                detail=f"injected {delay} virtual time units of latency",
            ))
        for roi_id in self.degradation.degraded_rois():
            psec = self.psecs.get(roi_id)
            if psec is None:
                continue
            psec.degraded = True
            psec.degradation_reasons = self.degradation.reasons_for(roi_id)
            psec.sets_exact = self.degradation.sets_complete_for(roi_id)
            psec.use_callstacks_complete = (
                self.degradation.use_callstacks_complete_for(roi_id)
            )
        for psec in self.psecs.values():
            psec.check_invariants()

    @property
    def degraded(self) -> bool:
        return self.degradation.degraded

    def require_complete(self) -> None:
        """Raise :class:`DegradedResult` if the run needed fail-soft
        intervention (callers that demand exact PSECs)."""
        if self.degradation.degraded:
            raise DegradedResult(
                "profiling run completed in degraded mode: "
                + self.degradation.summary(),
                report=self.degradation,
            )

    # -- event submission ----------------------------------------------------

    def submit(self, event) -> None:
        """Route one event into the pipeline, honouring per-ROI budgets."""
        if self._event_budget:
            event = self._filter_event(event)
            if event is None:
                return
        self.pipeline.push(event)

    def _filter_event(self, event):
        """Per-ROI event budget: past the limit an ROI stops full FSA/
        use-callstack tracking and records conservative letters instead.

        Returns the (possibly narrowed) event to push, or None if every
        active ROI is over budget and the event was fully converted.
        """
        active = getattr(event, "active", ())
        if not active:
            return event
        limit = self._resilience.max_events_per_roi
        over: List[Tuple[int, int, int]] = []
        under: List[Tuple[int, int, int]] = []
        for entry in active:
            roi_id = entry[0]
            count = self._roi_event_counts.get(roi_id, 0) + 1
            self._roi_event_counts[roi_id] = count
            if count > limit:
                over.append(entry)
                if roi_id not in self._budget_tripped:
                    self._budget_tripped.add(roi_id)
                    self.degradation.add(DegradationRecord(
                        batch_seq=-1, kind="event-budget", rois=(roi_id,),
                        events=0, action=ACTION_CLASSIFY_ONLY,
                        sets_complete=False, use_callstacks_complete=False,
                        detail=(f"ROI {roi_id} exceeded {limit} events; "
                                "switched to conservative classification"),
                    ))
            else:
                under.append(entry)
        if not over or type(event) is not AccessEvent:
            # Non-access events (alloc/escape/free/classify) are rare and
            # keep the ASMT and reachability graph complete: forward them
            # unchanged even past the budget.
            return event
        letters = _CONSERVATIVE_WRITE if event.is_write else _CONSERVATIVE_READ
        self.pipeline.push(ClassifyEvent(
            states=letters, obj_id=event.obj_id, offset=event.offset,
            size=event.size, count=event.count, stride=event.stride,
            var=event.var, loc=event.loc, active=tuple(over),
            time=event.time,
        ))
        if not under:
            return None
        return replace(event, active=tuple(under))

    # -- degraded-mode fallback ----------------------------------------------

    def _note_retry(self, batch: Batch, attempt: int,
                    exc: BaseException) -> None:
        """A batch failed and is being retried (recoverable): nothing is
        lost, but the run needed intervention — record it."""
        rois: Set[int] = set()
        for event in batch.events:
            for entry in getattr(event, "active", ()):
                rois.add(entry[0])
        self.degradation.add(DegradationRecord(
            batch_seq=batch.seq, kind="worker_crash",
            rois=tuple(sorted(rois)), events=len(batch.events),
            action=ACTION_RETRIED, sets_complete=True,
            use_callstacks_complete=True,
            detail=f"attempt {attempt}: {type(exc).__name__}: {exc}",
        ))

    def _apply_degraded_batch(self, batch: Batch, failure: Failure) -> None:
        """A batch is unrecoverable (retries exhausted, dropped, or shed):
        apply conservative classification instead of the full FSA.

        Reads force Input, writes force Output+Transfer; allocations,
        escapes, and frees still apply exactly (they are order-insensitive
        here), so the ASMT and reachability graph never lose nodes.  Runs
        in batch sequence order via the pipeline's reorder buffer.
        """
        kind, detail = failure
        rois: Set[int] = set()
        for event in batch.events:
            etype = type(event)
            if etype is AccessEvent:
                letters = (_CONSERVATIVE_WRITE if event.is_write
                           else _CONSERVATIVE_READ)
                for key, var in self._keys_for(event):
                    for roi_id, _, _ in event.active:
                        self.psecs[roi_id].force_classification(
                            key, var, letters, event.time
                        )
                        rois.add(roi_id)
            elif etype is ClassifyEvent:
                self._apply_classify(event)
                rois.update(entry[0] for entry in event.active)
            elif etype is AllocEvent:
                self._apply_alloc(event)
                rois.update(entry[0] for entry in event.active)
            elif etype is EscapeEvent:
                self._apply_escape(event)
                rois.update(entry[0] for entry in event.active)
            elif etype is FreeEvent:
                self._apply_free(event)
        self.degradation.add(DegradationRecord(
            batch_seq=batch.seq, kind=kind, rois=tuple(sorted(rois)),
            events=len(batch.events), action=ACTION_CONSERVATIVE,
            sets_complete=False, use_callstacks_complete=False,
            detail=detail,
        ))

    # -- batch stages --------------------------------------------------------

    def _process_batch(self, batch: Batch) -> Batch:
        """Worker stage: order-insensitive per-event work.

        Everything order-sensitive (the FSA) lives in postprocess; this
        stage exists to model the parallelizable portion of Figure 5 and to
        keep the threaded mode honest (it must not touch shared state).
        """
        return batch

    def _postprocess_batch(self, batch: Batch) -> None:
        for event in batch.events:
            kind = type(event)
            if kind is AccessEvent:
                self._apply_access(event)
            elif kind is ClassifyEvent:
                self._apply_classify(event)
            elif kind is AllocEvent:
                self._apply_alloc(event)
            elif kind is EscapeEvent:
                self._apply_escape(event)
            elif kind is FreeEvent:
                self._apply_free(event)

    # -- event application ------------------------------------------------------

    def _keys_for(self, event) -> List[Tuple[PseKey, Optional[VarInfo]]]:
        if event.var is not None and event.count == 1:
            return [(("var", event.obj_id), event.var)]
        keys = []
        for index in range(event.count):
            offset = event.offset + index * (event.stride or event.size)
            keys.append((("mem", event.obj_id, offset, event.size), event.var))
        return keys

    def _apply_access(self, event: AccessEvent) -> None:
        track_uses = self.config.policy.track_use_callstacks
        for key, var in self._keys_for(event):
            for roi_id, invocation, epoch in event.active:
                self.psecs[roi_id].record_access(
                    key, var, event.is_write, invocation, event.time,
                    event.loc, event.callstack, track_uses,
                    self.config.max_use_records, epoch,
                )

    def _apply_classify(self, event: ClassifyEvent) -> None:
        for key, var in self._keys_for(event):
            for roi_id, _, _ in event.active:
                self.psecs[roi_id].force_classification(
                    key, var, event.states, event.time
                )

    def _apply_alloc(self, event: AllocEvent) -> None:
        self.asmt.register(
            AsmtEntry(
                obj_id=event.obj_id,
                size=event.size,
                kind=event.kind,
                var=event.var,
                alloc_loc=event.loc,
                alloc_callstack=event.callstack,
                alloc_time=event.time,
            )
        )
        if self.config.policy.track_reachability:
            for roi_id, _, _ in event.active:
                psec = self.psecs[roi_id]
                psec.allocated_in_roi.add(event.obj_id)
                psec.reachability.add_node(event.obj_id, True, event.time)

    def _apply_escape(self, event: EscapeEvent) -> None:
        for roi_id, _, _ in event.active:
            self.psecs[roi_id].reachability.add_edge(
                event.src_obj, event.dst_obj, event.src_offset, event.time,
                str(event.loc) if event.loc else None,
            )

    def _apply_free(self, event: FreeEvent) -> None:
        self.asmt.mark_freed(event.obj_id, event.time)


class CarmotHooks(ExecutionHooks):
    """VM hook adapter: records events, charges main-thread costs."""

    def __init__(
        self,
        runtime: CarmotRuntime,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.runtime = runtime
        self.cm = cost_model
        self.vm = None  # set by the Interpreter
        #: Per-frame flags for callstack clustering (opt 7): has the current
        #: function invocation already captured its callstack?
        self._frame_captured: List[bool] = [False]

    # -- helpers ---------------------------------------------------------------

    def _object_for(self, addr: int) -> Optional[MemoryObject]:
        obj = self.vm.memory.try_object_at(addr)
        if obj is not None and obj.obj_id not in self.runtime.asmt:
            # Globals (and anything else allocated before hooks attach)
            # enter the ASMT lazily on first observation.
            self.runtime.asmt.register(
                AsmtEntry(
                    obj_id=obj.obj_id,
                    size=obj.size,
                    kind=obj.kind,
                    var=obj.var,
                    alloc_loc=obj.alloc_loc,
                    alloc_callstack=obj.alloc_callstack,
                    alloc_time=obj.alloc_time,
                )
            )
        return obj

    def _callstack_cost(self, depth: int) -> int:
        return (self.cm.callstack_capture_base
                + self.cm.callstack_capture_per_frame * depth)

    # -- ROI markers ----------------------------------------------------------

    def on_roi_begin(self, roi_id: int) -> int:
        self.runtime.roi_begin(roi_id)
        return self.cm.probe_push

    def on_roi_end(self, roi_id: int) -> int:
        self.runtime.roi_end(roi_id)
        return self.cm.probe_push

    def on_roi_reset(self, roi_id: int) -> int:
        self.runtime.roi_reset(roi_id)
        return self.cm.probe_push

    # -- access probes -----------------------------------------------------------

    def on_probe_access(self, kind, addr, size, var, count, stride, loc,
                        callstack) -> int:
        runtime = self.runtime
        cost = self.cm.aggregate_probe if count > 1 else self.cm.probe_push
        if not runtime.any_roi_active:
            runtime.stats.events_ignored_outside_roi += 1
            return cost
        if runtime.config.policy.track_sets:
            obj = self._object_for(addr)
            if obj is not None:
                runtime.stats.access_events += 1
                if count > 1:
                    runtime.stats.aggregated_events += 1
                if runtime.config.policy.track_use_callstacks:
                    cost += (self.cm.use_callstack_shadow
                             if runtime.config.shadow_callstacks
                             else self.cm.use_callstack_walk)
                if runtime.config.inline_processing:
                    cost += self.cm.inline_process * max(1, count)
                runtime.submit(
                    AccessEvent(
                        is_write=kind is AccessKind.WRITE,
                        obj_id=obj.obj_id,
                        offset=addr - obj.base,
                        size=size,
                        count=count,
                        stride=stride,
                        var=var,
                        loc=loc,
                        callstack=callstack,
                        active=runtime.active_snapshot(),
                        time=self.vm.instructions,
                    )
                )
        return cost

    def on_probe_classify(self, states, addr, size, var, count, stride,
                          loc, roi_id=None) -> int:
        runtime = self.runtime
        if roi_id is not None:
            active = ((roi_id, 0, 0),)
        elif runtime.any_roi_active:
            active = runtime.active_snapshot()
        else:
            return self.cm.classify_probe
        if runtime.config.policy.track_sets:
            obj = self._object_for(addr)
            if obj is not None:
                runtime.stats.classify_events += 1
                runtime.submit(
                    ClassifyEvent(
                        states=states,
                        obj_id=obj.obj_id,
                        offset=addr - obj.base,
                        size=size,
                        count=count,
                        stride=stride,
                        var=var,
                        loc=loc,
                        active=active,
                        time=self.vm.instructions,
                    )
                )
                if runtime.config.inline_processing:
                    return (self.cm.classify_probe
                            + self.cm.inline_process * max(1, count))
        return self.cm.classify_probe

    def on_probe_escape(self, value_addr, dest_addr, loc) -> int:
        runtime = self.runtime
        if not runtime.any_roi_active:
            return self.cm.escape_event
        if runtime.config.policy.track_reachability and value_addr != 0:
            dst = self._object_for(value_addr)
            src = self._object_for(dest_addr)
            if dst is not None and src is not None and src is not dst:
                runtime.stats.escape_events += 1
                runtime.submit(
                    EscapeEvent(
                        src_obj=src.obj_id,
                        src_offset=dest_addr - src.base,
                        dst_obj=dst.obj_id,
                        loc=loc,
                        active=runtime.active_snapshot(),
                        time=self.vm.instructions,
                    )
                )
                if runtime.config.inline_processing:
                    return self.cm.escape_event + self.cm.inline_process
        return self.cm.escape_event

    # -- allocations ---------------------------------------------------------------

    def on_alloc(self, obj: MemoryObject) -> int:
        runtime = self.runtime
        cost = self.cm.alloc_event
        if runtime.config.callstack_clustering:
            # Opt 7: one capture per function invocation, shared by all of
            # its allocations.
            if not self._frame_captured[-1]:
                self._frame_captured[-1] = True
                cost += self._callstack_cost(len(obj.alloc_callstack))
                runtime.stats.callstack_captures += 1
        else:
            cost += self._callstack_cost(len(obj.alloc_callstack))
            runtime.stats.callstack_captures += 1
        runtime.stats.alloc_events += 1
        runtime.submit(
            AllocEvent(
                obj_id=obj.obj_id,
                size=obj.size,
                kind=obj.kind,
                var=obj.var,
                loc=obj.alloc_loc,
                callstack=obj.alloc_callstack,
                active=runtime.active_snapshot(),
                time=self.vm.instructions,
            )
        )
        if runtime.config.inline_processing:
            cost += self.cm.inline_process
        return cost

    def on_free(self, obj: MemoryObject) -> int:
        self.runtime.submit(
            FreeEvent(obj.obj_id, self.runtime.active_snapshot(),
                      self.vm.instructions)
        )
        return self.cm.alloc_event

    def on_call_enter(self, function_name: str, instrumented: bool) -> int:
        self._frame_captured.append(False)
        config = self.runtime.config
        if (config.shadow_callstacks
                and config.policy.track_use_callstacks
                and instrumented):
            return self.cm.shadow_stack_maintain
        return 0

    def on_call_exit(self, function_name: str) -> int:
        if len(self._frame_captured) > 1:
            self._frame_captured.pop()
        config = self.runtime.config
        if config.shadow_callstacks and config.policy.track_use_callstacks:
            return self.cm.shadow_stack_maintain
        return 0

    # -- Pin (§4.5) ---------------------------------------------------------------------

    def wants_pin(self) -> bool:
        return (self.runtime.config.policy.needs_pin
                and self.runtime.any_roi_active)

    def on_pin_attach(self) -> int:
        self.runtime.stats.pin_attaches += 1
        return self.cm.pin_attach

    def on_pin_access(self, kind, addr, size) -> int:
        runtime = self.runtime
        granules = max(1, math.ceil(size / 8))
        runtime.stats.pin_accesses += granules
        if runtime.config.policy.track_sets:
            obj = self._object_for(addr)
            if obj is not None:
                runtime.submit(
                    AccessEvent(
                        is_write=kind is AccessKind.WRITE,
                        obj_id=obj.obj_id,
                        offset=addr - obj.base,
                        size=min(size, 8),
                        count=granules,
                        stride=8,
                        var=None,
                        loc=None,
                        callstack=tuple(self.vm.call_stack),
                        active=runtime.active_snapshot(),
                        time=self.vm.instructions,
                    )
                )
        cost = self.cm.pin_per_access * granules
        if runtime.config.inline_processing:
            cost += self.cm.inline_process * granules
        return cost

    def finish(self) -> None:
        self.runtime.finish()
