"""The PSEC Reachability Graph (§3.1) and reference-cycle analysis (§3.2).

Nodes are PSEs allocated while the ROI is active; edges record pointer
escapes (a pointer to PSE *b* stored into PSE *a* creates edge a→b).  Cycle
detection runs Tarjan's SCC algorithm; for each cycle CARMOT suggests
turning the reference *into the node with the oldest access time* into a
weak pointer — breaking the cycle at its most senior member lets programs
be ported to smart pointers gradually.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.instructions import SourceLoc


@dataclass
class ReachNode:
    obj_id: int
    allocated_in_roi: bool
    alloc_time: int
    first_access_time: int


@dataclass(frozen=True)
class ReachEdge:
    src: int
    dst: int
    src_offset: int
    time: int
    loc: Optional[str]


@dataclass
class CycleReport:
    """One reference cycle plus the weak-pointer suggestion breaking it."""

    nodes: Tuple[int, ...]
    edges: Tuple[ReachEdge, ...]
    weak_edge: ReachEdge

    def __len__(self) -> int:
        return len(self.nodes)


class ReachabilityGraph:
    def __init__(self) -> None:
        self._nodes: Dict[int, ReachNode] = {}
        self._out: Dict[int, Dict[int, ReachEdge]] = {}

    # -- construction -------------------------------------------------------

    def add_node(self, obj_id: int, allocated_in_roi: bool, alloc_time: int,
                 first_access_time: Optional[int] = None) -> None:
        if obj_id in self._nodes:
            return
        self._nodes[obj_id] = ReachNode(
            obj_id, allocated_in_roi, alloc_time,
            first_access_time if first_access_time is not None else alloc_time,
        )
        self._out[obj_id] = {}

    def touch(self, obj_id: int, time: int) -> None:
        node = self._nodes.get(obj_id)
        if node is not None and time < node.first_access_time:
            node.first_access_time = time

    def add_edge(self, src: int, dst: int, src_offset: int, time: int,
                 loc: Optional[str] = None) -> None:
        if src not in self._nodes:
            self.add_node(src, False, time)
        if dst not in self._nodes:
            self.add_node(dst, False, time)
        # Re-storing over the same slot keeps the most recent reference,
        # mirroring how a pointer field holds one value at a time.
        self._out[src][dst] = ReachEdge(src, dst, src_offset, time, loc)

    def remove_node(self, obj_id: int) -> None:
        """Called when a PSE is freed: its references die with it."""
        self._nodes.pop(obj_id, None)
        self._out.pop(obj_id, None)
        for edges in self._out.values():
            edges.pop(obj_id, None)

    # -- queries -----------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._out.values())

    def nodes(self) -> List[int]:
        return list(self._nodes)

    def edges(self) -> List[ReachEdge]:
        return [e for edges in self._out.values() for e in edges.values()]

    def successors(self, obj_id: int) -> List[int]:
        return list(self._out.get(obj_id, ()))

    def reachable_from(self, obj_id: int) -> Set[int]:
        seen: Set[int] = set()
        stack = [obj_id]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._out.get(node, ()))
        return seen

    # -- cycle analysis -------------------------------------------------------------

    def strongly_connected_components(self) -> List[List[int]]:
        """Tarjan's algorithm, iterative to survive deep graphs."""
        index_of: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        sccs: List[List[int]] = []
        counter = [0]

        for root in self._nodes:
            if root in index_of:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index_of[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                succs = [d for d in self._out.get(node, ()) if d in self._nodes]
                advanced = False
                for i in range(child_index, len(succs)):
                    succ = succs[i]
                    if succ not in index_of:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index_of[succ])
                if advanced:
                    continue
                if low[node] == index_of[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    sccs.append(scc)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sccs

    def find_cycles(self) -> List[CycleReport]:
        """All reference cycles, each with a weak-pointer suggestion."""
        reports: List[CycleReport] = []
        for scc in self.strongly_connected_components():
            members = set(scc)
            if len(scc) == 1:
                node = scc[0]
                if node not in self._out.get(node, ()):
                    continue
            cycle_edges = tuple(
                edge
                for src in scc
                for edge in self._out.get(src, {}).values()
                if edge.dst in members
            )
            oldest = min(
                scc, key=lambda n: (self._nodes[n].first_access_time, n)
            )
            into_oldest = [e for e in cycle_edges if e.dst == oldest]
            weak = into_oldest[0] if into_oldest else cycle_edges[0]
            reports.append(
                CycleReport(tuple(sorted(scc)), cycle_edges, weak)
            )
        reports.sort(key=lambda r: r.nodes)
        return reports
