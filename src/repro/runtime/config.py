"""Runtime configuration: what to track (Table 1) and how (§4.4–§4.6)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.resilience.budgets import ResiliencePolicy
from repro.resilience.faultinject import FaultPlan


@dataclass(frozen=True)
class InstrumentationPolicy:
    """What the profiler must record for a given target abstraction.

    Mirrors Table 1 plus the engineering notes in §5.2/§5.3:

    - ``parallel_for``  needs Sets and Use-callstacks;
    - ``task`` and ``stats`` need only Sets (no Use-callstacks — why the
      STATS naive/CARMOT gap is one order of magnitude, not two);
    - ``smart_pointers`` needs allocations and the Reachability Graph; its
      Sets come for free from allocation/escape observations (§5.2).
    """

    name: str
    track_sets: bool = True
    track_use_callstacks: bool = False
    track_reachability: bool = False
    needs_pin: bool = True


POLICIES: Dict[str, InstrumentationPolicy] = {
    "parallel_for": InstrumentationPolicy(
        "parallel_for", track_sets=True, track_use_callstacks=True,
        track_reachability=False, needs_pin=True,
    ),
    "task": InstrumentationPolicy(
        "task", track_sets=True, track_use_callstacks=False,
        track_reachability=False, needs_pin=True,
    ),
    "smart_pointers": InstrumentationPolicy(
        "smart_pointers", track_sets=False, track_use_callstacks=False,
        track_reachability=True, needs_pin=True,
    ),
    "stats": InstrumentationPolicy(
        "stats", track_sets=True, track_use_callstacks=False,
        track_reachability=False, needs_pin=True,
    ),
}

#: Fallback when an ROI does not name an abstraction: track everything.
FULL_POLICY = InstrumentationPolicy(
    "full", track_sets=True, track_use_callstacks=True,
    track_reachability=True, needs_pin=True,
)

#: What a profiler without CARMOT's engineering insight records: Table 1
#: taken literally.  It differs from :data:`POLICIES` only for smart
#: pointers, where Table 1 lists the Sets but CARMOT derives everything it
#: needs from allocations and the Reachability Graph alone (§5.2) — the
#: source of that use case's two-order-of-magnitude gap.
NAIVE_POLICIES: Dict[str, InstrumentationPolicy] = {
    "parallel_for": POLICIES["parallel_for"],
    "task": POLICIES["task"],
    "stats": POLICIES["stats"],
    "smart_pointers": InstrumentationPolicy(
        "smart_pointers_table1", track_sets=True,
        track_use_callstacks=False, track_reachability=True, needs_pin=True,
    ),
}


def policy_for(abstraction: Optional[str]) -> InstrumentationPolicy:
    if abstraction is None:
        return FULL_POLICY
    return POLICIES[abstraction]


def naive_policy_for(abstraction: Optional[str]) -> InstrumentationPolicy:
    if abstraction is None:
        return FULL_POLICY
    return NAIVE_POLICIES[abstraction]


@dataclass
class RuntimeConfig:
    """Knobs of the CARMOT runtime.

    ``callstack_clustering`` is optimization 7 of §4.4 (one callstack
    capture per function invocation instead of per allocation).
    ``batch_size``/``worker_count``/``threaded`` configure the batching
    pipeline of §4.6; the deterministic (non-threaded) mode processes
    batches synchronously in order, which yields bit-identical PSECs and is
    the default for tests and experiments.
    """

    policy: InstrumentationPolicy = FULL_POLICY
    callstack_clustering: bool = True
    #: CARMOT maintains a shadow callstack at call boundaries so capturing a
    #: use-callstack is cheap; the naive runtime walks the stack per use.
    shadow_callstacks: bool = True
    #: The naive runtime lacks the §4.6 pipeline and processes events inline
    #: on the main thread.
    inline_processing: bool = False
    batch_size: int = 1024
    threaded: bool = False
    worker_count: int = 2
    #: Memory guard: the naive configuration can accumulate unboundedly many
    #: use-callstack records; the paper marks such runs with "*" in Figure 7.
    max_use_records: int = 4_000_000
    #: Runtime-layer resilience: backpressure, retries, per-ROI event
    #: budgets, and the degraded-mode switch.  The all-off default keeps
    #: every PSEC bit-identical to the pre-resilience runtime.
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    #: Deterministic fault-injection schedule (None = no faults).
    fault_plan: Optional[FaultPlan] = None
    #: Event encoding on the hot path: ``"object"`` (one dataclass per
    #: event — the differential-testing oracle) or ``"packed"``
    #: (struct-of-arrays blocks of interned integer columns, consumed by a
    #: flat-table FSA kernel).  Both produce byte-identical PSECs.
    event_encoding: str = "object"
    #: With the packed encoding, fold each batch's access/classify rows on
    #: this many shard worker threads, partitioned by ``obj_id % shards``
    #: (FSA states are per-PSE, so shards are independent).  0/1 keeps the
    #: fold on the drain thread (deterministic default).
    pipeline_shards: int = 0
    #: Which drain folds packed batches: ``"auto"`` (threads iff
    #: ``pipeline_shards > 1``, else in-process — the historical
    #: behaviour), ``"inproc"``, ``"threads"``, or ``"procs"`` (supervised
    #: worker processes over shared-memory rings with crash recovery; see
    #: DESIGN.md §13).  All four produce byte-identical PSECs.
    drain: str = "auto"

    def __post_init__(self) -> None:
        if self.event_encoding not in ("object", "packed"):
            raise ValueError(
                f"unknown event encoding {self.event_encoding!r} "
                "(expected 'object' or 'packed')"
            )
        if self.pipeline_shards < 0:
            raise ValueError("pipeline_shards must be >= 0")
        if self.drain not in ("auto", "inproc", "threads", "procs"):
            raise ValueError(
                f"unknown drain mode {self.drain!r} "
                "(expected 'auto', 'inproc', 'threads', or 'procs')"
            )
        if self.drain in ("threads", "procs") \
                and self.event_encoding != "packed":
            raise ValueError(
                f"drain mode {self.drain!r} folds packed batches and "
                "requires event_encoding='packed'"
            )
