"""Event records flowing from instrumentation into the runtime pipeline.

Events are stamped at record time with the currently-active ROI invocations
(``active``) and the logical clock, so batches can be processed out of order
by worker threads without changing the resulting PSEC: the Rf/Wf-vs-Rn/Wn
decision depends only on the stamped invocation numbers (§4.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ir.instructions import SourceLoc, VarInfo


@dataclass(slots=True)
class AccessEvent:
    """One (possibly aggregated) PSE access inside at least one active ROI."""

    is_write: bool
    obj_id: int
    offset: int
    size: int
    count: int
    stride: int
    var: Optional[VarInfo]
    loc: Optional[SourceLoc]
    callstack: Tuple[str, ...]
    active: Tuple[Tuple[int, int], ...]  # ((roi_id, invocation), ...)
    time: int


@dataclass(slots=True)
class ClassifyEvent:
    """Compile-time-proven classification (opt 3): force set letters."""

    states: str
    obj_id: int
    offset: int
    size: int
    count: int
    stride: int
    var: Optional[VarInfo]
    loc: Optional[SourceLoc]
    active: Tuple[Tuple[int, int], ...]
    time: int


@dataclass(slots=True)
class AllocEvent:
    """A PSE allocation observed while an ROI is active."""

    obj_id: int
    size: int
    kind: str
    var: Optional[VarInfo]
    loc: Optional[SourceLoc]
    callstack: Tuple[str, ...]
    active: Tuple[Tuple[int, int], ...]
    time: int


@dataclass(slots=True)
class EscapeEvent:
    """A pointer to ``dst_obj`` stored into ``src_obj`` at ``src_offset``."""

    src_obj: int
    src_offset: int
    dst_obj: int
    loc: Optional[SourceLoc]
    active: Tuple[Tuple[int, int], ...]
    time: int


@dataclass(slots=True)
class FreeEvent:
    obj_id: int
    active: Tuple[Tuple[int, int], ...]
    time: int


Event = object  # any of the above dataclasses
