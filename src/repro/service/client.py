"""Blocking client for the ``repro serve`` daemon.

:class:`ServiceClient` opens one Unix-socket connection and exchanges
request/response documents (:mod:`repro.service.wire` frames).  The
``repro request`` subcommand, the serve bench leg, and the daemon test
suites are all built on it.
"""

from __future__ import annotations

import socket
from typing import Dict, Optional

from repro.errors import ReproError
from repro.service.wire import read_frame_sync, write_frame_sync


class ServiceUnavailable(ReproError):
    """The daemon socket is absent, refusing, or hung up mid-exchange."""


class ServiceClient:
    """One connection to a serve daemon.

    ``namespace`` names this client's cache partition on the daemon's
    store; every data request sent through the client carries it.
    """

    def __init__(self, socket_path: str, namespace: Optional[str] = None,
                 timeout: Optional[float] = 60.0) -> None:
        self.socket_path = socket_path
        self.namespace = namespace
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    # -- lifecycle -----------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.socket_path)
            except OSError as error:
                sock.close()
                raise ServiceUnavailable(
                    f"cannot connect to serve daemon at "
                    f"{self.socket_path}: {error}"
                ) from None
            self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- exchanges -----------------------------------------------------------

    def call(self, doc: Dict[str, object]) -> Dict[str, object]:
        """One request/response exchange of raw documents."""
        self.connect()
        try:
            write_frame_sync(self._sock, doc)
            response = read_frame_sync(self._sock)
        except (OSError, ReproError) as error:
            self.close()
            if isinstance(error, ReproError) \
                    and not isinstance(error, ServiceUnavailable):
                raise ServiceUnavailable(
                    f"serve daemon at {self.socket_path}: {error}"
                ) from None
            raise
        if response is None:
            self.close()
            raise ServiceUnavailable(
                f"serve daemon at {self.socket_path} closed the "
                f"connection without replying"
            )
        return response

    def request(self, request) -> Dict[str, object]:
        """Send a typed service request; returns the response document."""
        doc = request.to_doc()
        if self.namespace is not None:
            doc["namespace"] = self.namespace
        return self.call(doc)

    # -- control plane -------------------------------------------------------

    def ping(self) -> Dict[str, object]:
        return self.call({"kind": "ping"})

    def stats(self) -> Dict[str, object]:
        return self.call({"kind": "stats"})

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to drain in-flight requests and exit."""
        return self.call({"kind": "shutdown"})


def wait_for_daemon(socket_path: str, timeout: float = 10.0,
                    interval: float = 0.05) -> None:
    """Block until the daemon answers a ping (startup synchronization)."""
    import time

    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(socket_path, timeout=interval * 20) as client:
                client.ping()
            return
        except ReproError as error:
            last_error = error
            time.sleep(interval)
    raise ServiceUnavailable(
        f"serve daemon at {socket_path} did not come up within "
        f"{timeout:.1f}s: {last_error}"
    )
