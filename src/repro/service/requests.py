"""Typed service requests: the transport-agnostic request surface.

Every profiling entry point — the CLI subcommands, the ``repro serve``
daemon, in-process embedding — speaks the same four request kinds plus
``dis``.  A request is a plain dataclass built around :class:`RunOptions`,
which absorbs the option-resolution logic the CLI used to duplicate
across ``_run_kwargs``/``_carmot_options``/``_profiling_pipeline``/
``_session_for``: translating the flat flag surface (budget spec, fault
plan, drain, engine, prescreen mode, pass pipeline) into the
``Session``/``CompiledProgram.run`` keyword arguments.

Requests round-trip through canonical JSON documents (``to_doc`` /
``parse_request_doc``) — that document is the daemon's wire format, so
a request built from argparse flags and one parsed off the socket are
indistinguishable by construction.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Optional

from repro.compiler import PRESCREEN_MODES, CarmotOptions
from repro.errors import ReproError
from repro.passes.registry import parse_pipeline
from repro.resilience import FaultPlan, parse_budget_spec

#: Request kinds the service core executes (``stats``/``ping``/
#: ``shutdown`` are daemon control frames, not service requests).
REQUEST_KINDS = ("recommend", "psec", "overhead", "ir", "dis")

_DRAINS = ("inproc", "threads", "procs")
_VMS = ("bytecode", "ir")
_ENCODINGS = ("object", "packed")


@dataclass(frozen=True)
class RunOptions:
    """Everything that steers one profiled run, in CLI-flag shape.

    Values stay in their flat, JSON-able spelling (the ``--budget``,
    ``--fault-plan``, and ``--recommenders`` strings, not the parsed
    dataclasses/name lists); parsing happens on use so a request
    document validates identically whether it came from argparse or off
    the wire.
    """

    abstraction: Optional[str] = None
    recommenders: Optional[str] = None
    entry: str = "main"
    budget: Optional[str] = None
    fault_plan: Optional[str] = None
    batch_size: Optional[int] = None
    event_encoding: Optional[str] = None
    pipeline_shards: Optional[int] = None
    drain: Optional[str] = None
    vm: str = "bytecode"
    prescreen: str = "off"
    passes: Optional[str] = None
    trace: bool = False
    no_cache: bool = False
    print_pass_stats: bool = False

    def __post_init__(self) -> None:
        if self.vm not in _VMS:
            raise ReproError(f"vm must be one of {_VMS}, got {self.vm!r}")
        if self.prescreen not in PRESCREEN_MODES:
            raise ReproError(
                f"prescreen must be one of {tuple(PRESCREEN_MODES)}, "
                f"got {self.prescreen!r}"
            )
        if self.drain is not None and self.drain not in _DRAINS:
            raise ReproError(
                f"drain must be one of {_DRAINS}, got {self.drain!r}"
            )
        if self.event_encoding is not None \
                and self.event_encoding not in _ENCODINGS:
            raise ReproError(
                f"event encoding must be one of {_ENCODINGS}, "
                f"got {self.event_encoding!r}"
            )

    # -- construction --------------------------------------------------------

    @classmethod
    def from_args(cls, args) -> "RunOptions":
        """RunOptions from an argparse namespace (missing attrs default)."""
        kwargs = {}
        for spec in fields(cls):
            value = getattr(args, spec.name, None)
            if value is not None:
                kwargs[spec.name] = value
        return cls(**kwargs)

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "RunOptions":
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ReproError(f"unknown run option(s): {', '.join(unknown)}")
        return cls(**doc)

    def to_doc(self) -> Dict[str, object]:
        """Canonical JSON view: defaults omitted, so two requests differ
        exactly when their effective options differ."""
        defaults = {spec.name: spec.default for spec in fields(self)}
        return {
            key: value for key, value in sorted(asdict(self).items())
            if value != defaults[key]
        }

    # -- resolution (the logic formerly inlined in cli.py) -------------------

    def run_kwargs(self) -> Dict[str, object]:
        """Translate budget/fault-plan/drain options into
        ``CompiledProgram.run()`` keyword arguments."""
        kwargs: Dict[str, object] = {}
        if self.budget:
            spec = parse_budget_spec(self.budget)
            kwargs["budgets"] = spec.vm
            kwargs["resilience"] = spec.runtime
        if self.fault_plan:
            kwargs["fault_plan"] = FaultPlan.parse(self.fault_plan)
        if self.batch_size is not None:
            kwargs["batch_size"] = self.batch_size
        if self.event_encoding:
            kwargs["event_encoding"] = self.event_encoding
        if self.pipeline_shards is not None:
            kwargs["pipeline_shards"] = self.pipeline_shards
        if self.drain:
            kwargs["drain"] = self.drain
            if self.drain in ("threads", "procs"):
                encoding = kwargs.get("event_encoding")
                if encoding is None:
                    # threads/procs fold packed batches; imply the encoding
                    # the same way --pipeline-shards examples document it.
                    kwargs["event_encoding"] = "packed"
                elif encoding != "packed":
                    raise ReproError(
                        f"--drain {self.drain} folds packed batches and "
                        f"cannot combine with --event-encoding {encoding}"
                    )
        return kwargs

    def carmot_options(self) -> Optional[CarmotOptions]:
        """CarmotOptions, or None when every option-level flag is at its
        default (so cache keys match pre-flag invocations)."""
        if self.prescreen == "off":
            return None
        return CarmotOptions(prescreen=self.prescreen)

    def profiling_pipeline(self) -> str:
        """The pipeline text for recommend/psec: full CARMOT by default,
        the explicit ``passes`` pipeline when given (must instrument)."""
        if self.passes:
            names = parse_pipeline(self.passes)
            if "instrument" not in names and "naive-instrument" not in names:
                raise ReproError(
                    f"pipeline {self.passes!r} has no instrumenter; append "
                    "'instrument' (or 'naive-instrument') to profile"
                )
            return self.passes
        return "carmot"

    @property
    def session_enabled(self) -> bool:
        """Whether the artifact cache may serve this request.

        ``no_cache`` runs everything live; so does ``print_pass_stats``,
        whose per-pass timing report only exists on a live compile, and
        ``trace``, whose execution trace only exists when the VM actually
        runs (a profile cache hit would skip it).
        """
        return not (self.no_cache or self.print_pass_stats or self.trace)


@dataclass(frozen=True)
class _BaseRequest:
    """Shared shape: MiniC source text plus run options.

    The source travels *inline* (never as a path): the daemon serves
    whatever bytes the client holds, so it needs no filesystem access to
    client machines and the cache keys on content as always.
    """

    source: str
    name: str = "program"
    options: RunOptions = field(default_factory=RunOptions)

    def to_doc(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "source": self.source,
            "name": self.name,
            "options": self.options.to_doc(),
        }


@dataclass(frozen=True)
class RecommendRequest(_BaseRequest):
    """Profile and recommend an abstraction per ROI."""

    kind = "recommend"


@dataclass(frozen=True)
class PsecRequest(_BaseRequest):
    """Profile and return the raw Sets of every ROI."""

    kind = "psec"


@dataclass(frozen=True)
class OverheadRequest(_BaseRequest):
    """Compare baseline/naive/CARMOT cost on the program."""

    kind = "overhead"


@dataclass(frozen=True)
class IrRequest(_BaseRequest):
    """Dump the (optionally instrumented) IR."""

    kind = "ir"
    #: ``plain`` (frontend only) | ``baseline`` | ``naive`` | ``carmot``;
    #: an explicit ``options.passes`` pipeline overrides the mode.
    mode: str = "plain"

    def to_doc(self) -> Dict[str, object]:
        return {**super().to_doc(), "mode": self.mode}


@dataclass(frozen=True)
class DisRequest(_BaseRequest):
    """Disassemble the lowered register bytecode."""

    kind = "dis"
    mode: str = "carmot"
    #: Run the program on the bytecode engine first and annotate the
    #: sites the interpreter quickened.
    quicken_report: bool = False

    def to_doc(self) -> Dict[str, object]:
        return {**super().to_doc(), "mode": self.mode,
                "quicken_report": self.quicken_report}


_REQUEST_TYPES = {
    "recommend": RecommendRequest,
    "psec": PsecRequest,
    "overhead": OverheadRequest,
    "ir": IrRequest,
    "dis": DisRequest,
}

_IR_MODES = ("plain", "baseline", "naive", "carmot")
_DIS_MODES = ("baseline", "naive", "carmot")


def parse_request_doc(doc: Dict[str, object]):
    """A request object from its wire document (strictly validated)."""
    if not isinstance(doc, dict):
        raise ReproError("request must be a JSON object")
    kind = doc.get("kind")
    if kind not in _REQUEST_TYPES:
        raise ReproError(
            f"unknown request kind {kind!r} "
            f"(choose from {', '.join(REQUEST_KINDS)})"
        )
    source = doc.get("source")
    if not isinstance(source, str):
        raise ReproError("request 'source' must be the MiniC source text")
    name = doc.get("name", "program")
    if not isinstance(name, str):
        raise ReproError("request 'name' must be a string")
    options_doc = doc.get("options", {})
    if not isinstance(options_doc, dict):
        raise ReproError("request 'options' must be an object")
    try:
        options = RunOptions.from_doc(options_doc)
    except TypeError as error:
        raise ReproError(f"bad run options: {error}") from None
    kwargs: Dict[str, object] = {
        "source": source, "name": name, "options": options,
    }
    if kind == "ir":
        mode = doc.get("mode", "plain")
        if mode not in _IR_MODES:
            raise ReproError(
                f"ir mode must be one of {_IR_MODES}, got {mode!r}"
            )
        kwargs["mode"] = mode
    if kind == "dis":
        mode = doc.get("mode", "carmot")
        if mode not in _DIS_MODES:
            raise ReproError(
                f"dis mode must be one of {_DIS_MODES}, got {mode!r}"
            )
        kwargs["mode"] = mode
        kwargs["quicken_report"] = bool(doc.get("quicken_report", False))
    return _REQUEST_TYPES[kind](**kwargs)
