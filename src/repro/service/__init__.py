"""Transport-agnostic service layer over the session cache.

The package splits into the layers of ISSUE's service stack:

- :mod:`repro.service.requests` — typed request dataclasses and the
  :class:`RunOptions` resolution logic shared by every entry point;
- :mod:`repro.service.core` — :class:`ServiceCore`, the single
  orchestration path that executes requests and returns response
  documents;
- :mod:`repro.service.format` — pure renderers from response documents
  to the CLI's historical byte-exact output;
- :mod:`repro.service.wire` / :mod:`repro.service.client` /
  :mod:`repro.service.daemon` — the ``repro serve`` Unix-socket
  transport.
"""

from repro.service.client import ServiceClient, ServiceUnavailable, wait_for_daemon
from repro.service.core import ServiceCore, error_response, response_digest
from repro.service.daemon import ServeDaemon, ServeMetrics
from repro.service.format import RenderOptions, Rendered, render_response
from repro.service.requests import (
    REQUEST_KINDS,
    DisRequest,
    IrRequest,
    OverheadRequest,
    PsecRequest,
    RecommendRequest,
    RunOptions,
    parse_request_doc,
)

__all__ = [
    "REQUEST_KINDS",
    "DisRequest",
    "IrRequest",
    "OverheadRequest",
    "PsecRequest",
    "RecommendRequest",
    "Rendered",
    "RenderOptions",
    "RunOptions",
    "ServeDaemon",
    "ServeMetrics",
    "ServiceClient",
    "ServiceCore",
    "ServiceUnavailable",
    "error_response",
    "parse_request_doc",
    "render_response",
    "response_digest",
    "wait_for_daemon",
]
