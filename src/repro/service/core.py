"""Transport-agnostic service core: execute requests, return documents.

:class:`ServiceCore` is the single orchestration path over the session
layer.  It executes a typed request (:mod:`repro.service.requests`)
against a :class:`~repro.session.Session` and returns a **response
document** — a plain JSON-able dict — instead of printing.  The CLI
renders that document to the historical byte-exact output
(:mod:`repro.service.format`); the ``repro serve`` daemon ships it over
a socket; tests digest it.

Response envelope::

    {"kind": "...", "ok": true, "service_schema": 1,
     "body": {...},   # deterministic: equal runs produce equal bodies
     "meta": {...}}   # volatile: cache stage hits, pass timings, ...

The body/meta split is the digest contract: :func:`response_digest`
hashes ``kind`` + ``body`` only, so a cold daemon response, a warm one,
and an in-process run of the same request all share one digest — that is
what the serve bench leg and the differential suites gate on.  Every
response is normalized through JSON (the session's normalize-through-
artifact idiom, applied to the wire): the in-process caller sees exactly
the object a socket client would parse.
"""

from __future__ import annotations

import hashlib
import io
import json
from typing import Dict, List, Optional, Tuple

from repro._version import SERVICE_SCHEMA_VERSION
from repro.abstractions import describe_pse
from repro.compiler import CompiledProgram
from repro.errors import ReproError
from repro.recommend import parse_selection
from repro.runtime.psec_json import psec_sets_digest, psec_sets_doc
from repro.service.requests import (
    DisRequest,
    IrRequest,
    OverheadRequest,
    PsecRequest,
    RecommendRequest,
    RunOptions,
    parse_request_doc,
)
from repro.session import Session


def response_digest(doc: Dict[str, object]) -> str:
    """SHA-256 over the deterministic part of a response document.

    Meta (cache stage hits, pass timings, queue waits) is excluded: the
    digest witnesses *what was computed*, not how it was served, so warm
    and cold paths — and the daemon vs the in-process core — must agree.
    """
    material = {"kind": doc.get("kind"), "body": doc.get("body")}
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def error_response(kind: Optional[str], error_type: str,
                   message: str) -> Dict[str, object]:
    """The canonical failure envelope (also used for ``overloaded``)."""
    return {
        "kind": kind,
        "ok": False,
        "service_schema": SERVICE_SCHEMA_VERSION,
        "error": {"type": error_type, "message": message},
        "body": None,
        "meta": {},
    }


def _tier2_line(program: CompiledProgram) -> Optional[str]:
    """Codegen fusion + runtime quickening counters, one greppable line.

    Fusion is a canonical-stream property; quickened/dequickened counts
    are only non-zero once the execution streams have been warmed (i.e.
    after the program ran on the bytecode engine).
    """
    from repro.vm.bytecode import fused_site_counts, quickened_op_count

    bc = getattr(program, "bytecode", None) \
        or getattr(program.module, "_bytecode", None)
    if bc is None:
        return None
    fused = fused_site_counts(bc)
    return (f"tier2: fused_sites={fused['total']} "
            f"(cmp_br={fused['cmp_br']} load_bin={fused['load_bin']} "
            f"bin_store={fused['bin_store']} "
            f"probe_access={fused['probe_access']}) "
            f"quickened_ops={quickened_op_count(bc)} "
            f"dequicken_count={bc.dequicken_count}")


def _pass_stats_block(options: RunOptions,
                      program: CompiledProgram) -> Optional[str]:
    """The exact stdout block ``--print-pass-stats`` historically emitted
    (report, optional tier-2 line, trailing blank line)."""
    if not options.print_pass_stats or program.pass_report is None:
        return None
    out = io.StringIO()
    print(program.pass_report.render(), file=out)
    tier2 = _tier2_line(program)
    if tier2 is not None:
        print(tier2, file=out)
    print(file=out)
    return out.getvalue()


class ServiceCore:
    """Executes service requests against one artifact store.

    One core serves many requests; each request gets a fresh
    :class:`Session` honoring its options (``no_cache`` etc.), all
    sessions sharing the core's cache directory and namespace.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 namespace: Optional[str] = None) -> None:
        self.cache_dir = cache_dir
        self.namespace = namespace

    # -- public API ----------------------------------------------------------

    def execute(self, request) -> Dict[str, object]:
        """Execute a typed request; returns the response document.

        Raises :class:`ReproError` on request/toolchain errors — wrap
        with :meth:`execute_doc` for the never-raises wire behaviour.
        """
        handler = {
            "recommend": self._recommend,
            "psec": self._psec,
            "overhead": self._overhead,
            "ir": self._ir,
            "dis": self._dis,
        }[request.kind]
        body, meta = handler(request)
        doc = {
            "kind": request.kind,
            "ok": True,
            "service_schema": SERVICE_SCHEMA_VERSION,
            "body": body,
            "meta": meta,
        }
        # Normalize through the wire format: the in-process caller and a
        # socket client must be handed indistinguishable objects.
        return json.loads(json.dumps(doc))

    def execute_doc(self, doc: Dict[str, object]) -> Dict[str, object]:
        """Wire entry point: request document in, response document out.

        Never raises for request-shaped failures — toolchain errors
        come back as the canonical error envelope.
        """
        kind = doc.get("kind") if isinstance(doc, dict) else None
        try:
            request = parse_request_doc(doc)
            return self.execute(request)
        except ReproError as error:
            return error_response(kind, "error", str(error))
        except Exception as error:  # noqa: BLE001 — daemon must not die
            return error_response(
                kind, "internal", f"{type(error).__name__}: {error}"
            )

    # -- shared stages -------------------------------------------------------

    def _session(self, options: RunOptions) -> Session:
        return Session(cache_dir=self.cache_dir,
                       enabled=options.session_enabled,
                       namespace=self.namespace)

    def _profile(self, request):
        """Session-backed compile+profile shared by recommend/psec.

        Returns ``(profiled, meta, session)`` — the session is handed
        back so follow-on stages (the recommend artifact) share it.
        """
        options = request.options
        session = self._session(options)
        profiled = session.profile(
            request.source, options.profiling_pipeline(),
            abstraction=options.abstraction,
            options=options.carmot_options(),
            name=request.name, entry=options.entry, vm=options.vm,
            trace=options.trace, **options.run_kwargs(),
        )
        meta: Dict[str, object] = {"stages": dict(profiled.stages)}
        block = _pass_stats_block(options, profiled.program)
        if block is not None:
            meta["pass_stats"] = [block]
        return profiled, meta, session

    @staticmethod
    def _degradation_fields(runtime) -> Dict[str, object]:
        degraded = bool(runtime is not None and runtime.degraded)
        return {
            "degraded": degraded,
            "degradation": runtime.degradation.summary() if degraded
            else None,
        }

    # -- kind: recommend -----------------------------------------------------

    def _recommend(self, request: RecommendRequest):
        # Validate the selection before paying for the profile.
        parse_selection(request.options.recommenders)
        profiled, meta, session = self._profile(request)
        result, runtime = profiled.result, profiled.runtime
        doc, stage = session.recommend_doc(
            profiled, abstraction=request.options.abstraction,
            recommenders=request.options.recommenders,
        )
        meta["stages"] = {**meta["stages"], "recommend": stage}
        body = {
            "output": [str(token) for token in result.output],
            "recommend_schema": doc["version"],
            "recommenders": doc["recommenders"],
            "rois": doc["rois"],
            **self._degradation_fields(runtime),
        }
        return body, meta

    # -- kind: psec ----------------------------------------------------------

    def _psec(self, request: PsecRequest):
        profiled, meta, _ = self._profile(request)
        program, runtime = profiled.program, profiled.runtime
        sets_doc = psec_sets_doc(runtime.psecs)
        rois: List[Dict[str, object]] = []
        for roi_id, psec in sorted(runtime.psecs.items()):
            roi = program.module.rois[roi_id]
            reachability = None
            if psec.reachability.edge_count:
                reachability = {
                    "nodes": psec.reachability.node_count,
                    "edges": psec.reachability.edge_count,
                    "cycles": len(psec.reachability.find_cycles()),
                }
            rois.append({
                "id": roi_id,
                "name": roi.name,
                "loc": str(roi.loc),
                "invocations": psec.invocations,
                "degraded": bool(psec.degraded),
                "degradation_reasons": list(psec.degradation_reasons),
                # Human-listing view: described PSE names per set, in the
                # canonical psec.sets() set order.
                "sets": {
                    set_name: sorted(
                        str(describe_pse(k, psec, runtime.asmt))
                        for k in keys
                    )
                    for set_name, keys in psec.sets().items()
                },
                # Machine view: the raw key tuples (psec --json material).
                "sets_keys": sets_doc[str(roi_id)],
                "reachability": reachability,
            })
        body = {
            "sets_digest": psec_sets_digest(runtime.psecs),
            "rois": rois,
            **self._degradation_fields(runtime),
        }
        return body, meta

    # -- kind: overhead ------------------------------------------------------

    def _overhead(self, request: OverheadRequest):
        options = request.options
        kwargs = options.run_kwargs()
        session = self._session(options)
        # Baseline builds have no profile artifact (nothing but a
        # RunResult); the compile is still cached, the VM run is live.
        base_compile = session.compile(
            request.source, "baseline", name=request.name
        )
        base, _ = base_compile.program.run(
            entry=options.entry, budgets=kwargs.get("budgets"),
            vm=options.vm,
        )
        pass_stats: List[str] = []
        legs: Dict[str, object] = {}
        # --passes swaps out the CARMOT leg of the comparison; --prescreen
        # only steers this leg (naive has no plan to prescreen).
        for leg_name, pipeline, carmot_options in (
            ("naive", "naive", None),
            ("carmot", options.profiling_pipeline(),
             options.carmot_options()),
        ):
            profiled = session.profile(
                request.source, pipeline, abstraction=options.abstraction,
                name=request.name, options=carmot_options,
                entry=options.entry, vm=options.vm, **kwargs,
            )
            block = _pass_stats_block(options, profiled.program)
            if block is not None:
                pass_stats.append(block)
            legs[leg_name] = profiled.result.cost
        body = {
            "baseline_cost": base.cost,
            "naive_cost": legs["naive"],
            "carmot_cost": legs["carmot"],
        }
        meta: Dict[str, object] = {}
        if pass_stats:
            meta["pass_stats"] = pass_stats
        return body, meta

    # -- kind: ir ------------------------------------------------------------

    @staticmethod
    def _resolve_ir_pipeline(request: IrRequest) -> Optional[str]:
        if request.options.passes:
            # An explicit pipeline overrides the mode.
            return request.options.passes
        if request.mode in ("baseline", "naive", "carmot"):
            return request.mode
        return None  # plain: frontend only

    def _ir(self, request: IrRequest):
        options = request.options
        session = self._session(options)
        pipeline = self._resolve_ir_pipeline(request)
        meta: Dict[str, object] = {}
        if pipeline is None:
            module, _, _ = session.frontend(request.source, request.name)
        else:
            compiled = session.compile(
                request.source, pipeline, options.abstraction,
                options=options.carmot_options(), name=request.name,
            )
            block = _pass_stats_block(options, compiled.program)
            if block is not None:
                meta["pass_stats"] = [block]
            meta["stages"] = dict(compiled.stages)
            module = compiled.program.module
        body = {"ir": str(module), "pipeline": pipeline}
        return body, meta

    # -- kind: dis -----------------------------------------------------------

    def _dis(self, request: DisRequest):
        from repro.vm.bytecode import dequicken_module, disassemble

        options = request.options
        session = self._session(options)
        pipeline = options.passes if options.passes else request.mode
        compiled = session.compile(
            request.source, pipeline, options.abstraction,
            options=options.carmot_options(), name=request.name,
        )
        program = compiled.program
        stages = dict(compiled.stages)
        stages["codegen"] = session.codegen(program, compiled.ir_digest)
        meta: Dict[str, object] = {"stages": stages}
        block = _pass_stats_block(options, program)
        if block is not None:
            meta["pass_stats"] = [block]
        bytecode = program.bytecode
        note = None
        if request.quicken_report:
            # Run once on the bytecode engine so quickenable sites are
            # rewritten, disassemble with the report markers, then restore
            # the canonical execution streams.  The listing itself always
            # renders the canonical stream — it is byte-identical before
            # and after the run.
            try:
                program.run(vm="bytecode", entry=options.entry,
                            **options.run_kwargs())
            except ReproError as error:
                note = (f"note: run aborted ({error}); quickening still "
                        f"reflects every function that was entered")
            listing = disassemble(bytecode, quicken_report=True)
            dequicken_module(bytecode)
        else:
            listing = disassemble(bytecode)
        body = {"listing": listing, "quicken_report": request.quicken_report,
                "note": note}
        return body, meta
