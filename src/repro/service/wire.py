"""Length-prefixed JSON framing for the serve socket.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Both sides speak the same frames; a connection
carries any number of request/response pairs in order (the client
pipelines at most one request at a time).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional

from repro.errors import ReproError

_HEADER = struct.Struct(">I")

#: Frame-size sanity bound: large enough for any profile document the
#: toolchain produces, small enough to stop a garbage header from
#: triggering a gigabyte allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class WireError(ReproError):
    """A malformed or oversized frame."""


def encode_frame(doc: Dict[str, object]) -> bytes:
    # No sort_keys: key order is part of the document (the psec "sets"
    # mapping carries the canonical input/output/cloneable/transfer
    # order renderers print).  Digests canonicalize separately.
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> Dict[str, object]:
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise WireError(f"bad frame payload: {error}") from None
    if not isinstance(doc, dict):
        raise WireError("frame payload must be a JSON object")
    return doc


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"frame header announces {length} bytes "
            f"(bound {MAX_FRAME_BYTES})"
        )


# -- blocking (client) side --------------------------------------------------


def read_frame_sync(sock: socket.socket) -> Optional[Dict[str, object]]:
    """One frame off a blocking socket; None on clean EOF at a frame
    boundary, :class:`WireError` on a truncated frame."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    payload = _recv_exact(sock, length, eof_ok=False)
    return _decode_payload(payload)


def write_frame_sync(sock: socket.socket, doc: Dict[str, object]) -> None:
    sock.sendall(encode_frame(doc))


def _recv_exact(sock: socket.socket, n: int,
                eof_ok: bool) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- asyncio (daemon) side ---------------------------------------------------


async def read_frame(reader) -> Optional[Dict[str, object]]:
    """One frame off an asyncio StreamReader; None on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireError("connection closed mid-frame") from None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise WireError("connection closed mid-frame") from None
    return _decode_payload(payload)


async def write_frame(writer, doc: Dict[str, object]) -> None:
    writer.write(encode_frame(doc))
    await writer.drain()
