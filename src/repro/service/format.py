"""Render service response documents to the CLI's historical output.

The contract: every byte a ``repro`` subcommand prints is derived from a
:class:`~repro.service.core.ServiceCore` response document — the CLI and
a ``repro request`` client formatting a daemon response produce
identical output because they run identical code over identical
documents (the golden differential suite byte-diffs this).

Renderers are pure: document in, ``Rendered(out, err, exit_code)`` out.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class RenderOptions:
    """Presentation-only flags (they never travel to the daemon)."""

    json: bool = False
    show_output: bool = False
    cache_stats: bool = False

    @classmethod
    def from_args(cls, args) -> "RenderOptions":
        return cls(
            json=bool(getattr(args, "json", False)),
            show_output=bool(getattr(args, "show_output", False)),
            cache_stats=bool(getattr(args, "cache_stats", False)),
        )


@dataclass(frozen=True)
class Rendered:
    """What a subcommand writes: stdout text, stderr text, exit code."""

    out: str = ""
    err: str = ""
    exit_code: int = 0


class _Lines:
    """print()-compatible accumulation so renderers read like the old
    CLI bodies they replaced."""

    def __init__(self) -> None:
        self.parts: List[str] = []

    def print(self, text: str = "") -> None:
        self.parts.append(f"{text}\n")

    def write(self, text: str) -> None:
        self.parts.append(text)

    def text(self) -> str:
        return "".join(self.parts)


def _meta_preamble(doc: Dict, render: RenderOptions) -> "_Lines":
    """Pass-stats blocks (stdout) every profiled command prints first."""
    out = _Lines()
    for block in doc.get("meta", {}).get("pass_stats", []) or []:
        out.write(block)
    return out


def _stderr_preamble(doc: Dict, render: RenderOptions,
                     degradation: bool = True) -> "_Lines":
    """Cache-stage summary then degradation warning, on stderr."""
    err = _Lines()
    stages = doc.get("meta", {}).get("stages")
    if render.cache_stats and stages:
        summary = " ".join(f"{k}={v}" for k, v in stages.items())
        err.print(f"cache: {summary}")
    body = doc.get("body") or {}
    if degradation and body.get("degraded"):
        err.print(f"degraded run — {body['degradation']}")
    return err


def render_error(doc: Dict) -> Rendered:
    """A failure envelope, in the CLI's historical error spelling."""
    error = doc.get("error") or {}
    message = error.get("message", "request failed")
    if error.get("type") == "overloaded":
        return Rendered(err=f"error: server overloaded — {message}\n",
                        exit_code=2)
    return Rendered(err=f"error: {message}\n", exit_code=1)


def render_response(doc: Dict, render: RenderOptions) -> Rendered:
    """Dispatch on the response kind (error envelopes included)."""
    if not doc.get("ok"):
        return render_error(doc)
    return {
        "recommend": render_recommend,
        "psec": render_psec,
        "overhead": render_overhead,
        "ir": render_ir,
        "dis": render_dis,
    }[doc["kind"]](doc, render)


# -- recommend ---------------------------------------------------------------


def render_recommend(doc: Dict, render: RenderOptions) -> Rendered:
    if render.json:
        return _render_json_doc(doc)
    body = doc["body"]
    out = _meta_preamble(doc, render)
    err = _stderr_preamble(doc, render)
    if render.show_output:
        out.print("program output: " + " ".join(body["output"]))
    if not body["rois"]:
        err.print("no #pragma carmot roi annotations found")
        return Rendered(out=out.text(), err=err.text(), exit_code=1)
    for roi in body["rois"]:
        if roi["abstraction"] is None:
            out.print(
                f"ROI {roi['name']}: no abstraction requested; skipping"
            )
            continue
        out.print(roi["rendered"])
        out.print()
    return Rendered(out=out.text(), err=err.text())


# -- psec --------------------------------------------------------------------


def render_psec(doc: Dict, render: RenderOptions) -> Rendered:
    body = doc["body"]
    out = _meta_preamble(doc, render)
    err = _stderr_preamble(doc, render)
    if render.json:
        # Canonical sets-level document: exactly the psec_sets_digest
        # material plus ROI names/invocations, so two invocations with
        # identical Sets print byte-identical JSON (the CI prescreen
        # smoke job byte-diffs hybrid vs fully-dynamic output).
        json_doc = {
            "sets_digest": body["sets_digest"],
            "rois": {
                str(roi["id"]): {
                    "name": roi["name"],
                    "invocations": roi["invocations"],
                    "sets": roi["sets_keys"],
                }
                for roi in body["rois"]
            },
        }
        out.print(json.dumps(json_doc, indent=2, sort_keys=True))
        return Rendered(out=out.text(), err=err.text())
    for roi in body["rois"]:
        status = " [degraded: " + ", ".join(roi["degradation_reasons"]) \
            + "]" if roi["degraded"] else ""
        out.print(f"ROI {roi['name']} ({roi['loc']}) — "
                  f"{roi['invocations']} invocations{status}")
        for set_name, names in roi["sets"].items():
            out.print(f"  {set_name:9s}: {', '.join(names) or '-'}")
        reach = roi["reachability"]
        if reach:
            out.print(f"  reachability: {reach['nodes']} nodes, "
                      f"{reach['edges']} edges, "
                      f"{reach['cycles']} cycle(s)")
        out.print()
    return Rendered(out=out.text(), err=err.text())


# -- overhead ----------------------------------------------------------------


def render_overhead(doc: Dict, render: RenderOptions) -> Rendered:
    if render.json:
        return _render_json_doc(doc)
    body = doc["body"]
    out = _meta_preamble(doc, render)
    base = body["baseline_cost"]
    naive = body["naive_cost"]
    carmot = body["carmot_cost"]
    out.print(f"baseline cost : {base}")
    out.print(f"naive         : {naive}  ({naive / base:.1f}x)")
    out.print(f"carmot        : {carmot}  ({carmot / base:.1f}x)")
    out.print(f"gap           : {naive / carmot:.1f}x")
    return Rendered(out=out.text())


# -- ir ----------------------------------------------------------------------


def render_ir(doc: Dict, render: RenderOptions) -> Rendered:
    body = doc["body"]
    out = _meta_preamble(doc, render)
    err = _Lines()
    stages = doc.get("meta", {}).get("stages")
    if body["pipeline"] is not None and render.cache_stats and stages:
        summary = " ".join(f"{k}={v}" for k, v in stages.items())
        err.print(f"cache: {summary}")
    out.print(body["ir"])
    return Rendered(out=out.text(), err=err.text())


# -- dis ---------------------------------------------------------------------


def render_dis(doc: Dict, render: RenderOptions) -> Rendered:
    body = doc["body"]
    out = _meta_preamble(doc, render)
    err = _stderr_preamble(doc, render, degradation=False)
    if body.get("note"):
        err.print(body["note"])
    out.print(body["listing"])
    return Rendered(out=out.text(), err=err.text())


# -- shared ------------------------------------------------------------------


def _render_json_doc(doc: Dict) -> Rendered:
    """``--json``: the structured service response document itself."""
    out = _Lines()
    out.print(json.dumps(doc, indent=2, sort_keys=True))
    return Rendered(out=out.text())
