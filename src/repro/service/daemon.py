"""``repro serve``: a long-lived profiling daemon over a Unix socket.

One asyncio event loop accepts connections and multiplexes request
documents onto a bounded thread pool running
:class:`~repro.service.core.ServiceCore` — the same core the CLI uses,
so a daemon response is byte-for-byte the document an in-process run
would produce (the serve bench leg digest-gates this).  The cache
amortizes across every client: the first request for a program pays the
cold compile+profile, every later request from any client with the same
namespace is a warm artifact load.

Admission control rides the existing resilience machinery: the daemon
holds a :class:`~repro.resilience.ResiliencePolicy` whose
``max_queue_batches``/``queue_policy`` bound the request queue exactly
like the runtime bounds its batch queue — ``block`` parks excess
requests until a worker frees up, ``shed`` answers them immediately
with the canonical ``overloaded`` envelope (HTTP-503 semantics; clients
retry or fall back to a local run).

Control frames (``ping``/``stats``/``shutdown``) bypass admission so a
saturated daemon stays observable and drainable: ``shutdown`` stops
accepting work, lets in-flight requests finish (the drain), then exits.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

from repro._version import SERVICE_SCHEMA_VERSION, __version__
from repro.errors import ReproError
from repro.resilience import ResiliencePolicy
from repro.service.core import ServiceCore, error_response
from repro.service.requests import REQUEST_KINDS
from repro.service.wire import WireError, read_frame, write_frame
from repro.session import ArtifactStore
from repro.session.store import NamespaceError, validate_namespace

#: Default worker-thread count: profiling is CPU-bound Python, so a
#: couple of workers saturate a core while warm (artifact-load) requests
#: still overlap; clients needing more start more daemons.
DEFAULT_WORKERS = 4
#: Default queue bound (0 = unbounded, matching ResiliencePolicy).
DEFAULT_QUEUE = 16


class ServeMetrics:
    """Daemon-wide request counters (updated on the event loop only)."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.total = 0
        self.completed = 0
        self.errors = 0
        self.overloaded = 0
        self.by_kind: Dict[str, int] = {}
        self.stage_hits: Dict[str, Dict[str, int]] = {}
        self.queue_wait_total = 0.0
        self.queue_wait_max = 0.0
        self.busy_total = 0.0

    def admitted(self, kind: str) -> None:
        self.total += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def finished(self, response: Dict[str, object], queue_wait: float,
                 busy: float) -> None:
        self.completed += 1
        if not response.get("ok"):
            self.errors += 1
        self.queue_wait_total += queue_wait
        self.queue_wait_max = max(self.queue_wait_max, queue_wait)
        self.busy_total += busy
        stages = (response.get("meta") or {}).get("stages") or {}
        for stage, outcome in stages.items():
            per_stage = self.stage_hits.setdefault(
                stage, {"hit": 0, "miss": 0}
            )
            if outcome in per_stage:
                per_stage[outcome] += 1

    def doc(self) -> Dict[str, object]:
        elapsed = max(time.monotonic() - self.started, 1e-9)
        return {
            "uptime_s": round(elapsed, 3),
            "requests": {
                "total": self.total,
                "completed": self.completed,
                "errors": self.errors,
                "overloaded": self.overloaded,
                "by_kind": dict(sorted(self.by_kind.items())),
            },
            "requests_per_sec": round(self.completed / elapsed, 2),
            "queue_wait_s": {
                "total": round(self.queue_wait_total, 4),
                "max": round(self.queue_wait_max, 4),
                "mean": round(
                    self.queue_wait_total / self.completed, 4
                ) if self.completed else 0.0,
            },
            "busy_s_total": round(self.busy_total, 4),
            "stage_hits": {
                stage: dict(counts)
                for stage, counts in sorted(self.stage_hits.items())
            },
        }


class ServeDaemon:
    """The asyncio server; construct then ``asyncio.run(daemon.run())``."""

    def __init__(
        self,
        socket_path: str,
        cache_dir: Optional[str] = None,
        workers: int = DEFAULT_WORKERS,
        queue_bound: int = DEFAULT_QUEUE,
        queue_policy: str = "shed",
    ) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        # Admission control is configured *as* a resilience policy so the
        # bounds share validation (and vocabulary) with the runtime's
        # batch queue; degrade=True is the shed invariant.
        self.policy = ResiliencePolicy(
            max_queue_batches=queue_bound,
            queue_policy=queue_policy,
            degrade=True,
        )
        self.socket_path = socket_path
        self.cache_dir = cache_dir
        self.workers = workers
        self.metrics = ServeMetrics()
        self._cores: Dict[Optional[str], ServiceCore] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        self._sem: Optional[asyncio.Semaphore] = None
        self._stop: Optional[asyncio.Event] = None
        self._waiting = 0
        self._active = 0
        self._draining = False

    # -- lifecycle -----------------------------------------------------------

    async def run(self, announce=None) -> None:
        """Serve until a ``shutdown`` frame (or cancellation); drains
        in-flight requests before returning.  ``announce`` is called
        with one human-readable line once the socket is listening."""
        loop = asyncio.get_running_loop()
        self._sem = asyncio.Semaphore(self.workers)
        self._stop = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._remove_stale_socket()
        server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path
        )
        try:
            if announce is not None:
                announce(
                    f"repro serve {__version__}: listening on "
                    f"{self.socket_path} (workers={self.workers} "
                    f"queue={self.policy.max_queue_batches} "
                    f"policy={self.policy.queue_policy})"
                )
            await self._stop.wait()
        finally:
            self._draining = True
            server.close()
            await server.wait_closed()
            await self._drain()
            self._pool.shutdown(wait=True)
            self._remove_stale_socket()

    def _remove_stale_socket(self) -> None:
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    async def _drain(self) -> None:
        while self._active or self._waiting:
            await asyncio.sleep(0.01)

    # -- connections ---------------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                try:
                    doc = await read_frame(reader)
                except WireError as error:
                    await write_frame(
                        writer, error_response(None, "wire", str(error))
                    )
                    break
                if doc is None:
                    break
                response, stop_after = await self._dispatch(doc)
                await write_frame(writer, response)
                if stop_after:
                    self._stop.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; its request (if running) completes
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except OSError:
                pass

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, doc: Dict[str, object]):
        """(response document, stop-after-reply) for one frame."""
        kind = doc.get("kind")
        if kind == "ping":
            return {
                "kind": "ping", "ok": True,
                "service_schema": SERVICE_SCHEMA_VERSION,
                "body": {"version": __version__}, "meta": {},
            }, False
        if kind == "stats":
            return self._stats_response(), False
        if kind == "shutdown":
            self._draining = True
            return {
                "kind": "shutdown", "ok": True,
                "service_schema": SERVICE_SCHEMA_VERSION,
                "body": {
                    "draining": self._active + self._waiting,
                    "served": self.metrics.completed,
                },
                "meta": {},
            }, True
        if kind not in REQUEST_KINDS:
            return error_response(
                kind if isinstance(kind, str) else None, "error",
                f"unknown request kind {kind!r}",
            ), False
        return await self._run_request(kind, doc), False

    def _overloaded(self, kind: str, message: str) -> Dict[str, object]:
        self.metrics.overloaded += 1
        response = error_response(kind, "overloaded", message)
        response["meta"] = {
            "queued": self._waiting,
            "active": self._active,
            "queue_bound": self.policy.max_queue_batches,
        }
        return response

    async def _run_request(self, kind: str,
                           doc: Dict[str, object]) -> Dict[str, object]:
        if self._draining:
            return self._overloaded(kind, "daemon is draining for shutdown")
        bound = self.policy.max_queue_batches
        if (self.policy.queue_policy == "shed" and bound
                and self._waiting >= bound):
            return self._overloaded(
                kind, f"request queue bound {bound} reached; request shed"
            )
        try:
            core = self._core_for(doc.pop("namespace", None))
        except (ReproError, NamespaceError) as error:
            return error_response(kind, "error", str(error))
        arrived = time.monotonic()
        self.metrics.admitted(kind)
        self._waiting += 1
        waiting = True
        try:
            async with self._sem:
                self._waiting -= 1
                waiting = False
                self._active += 1
                queue_wait = time.monotonic() - arrived
                started = time.monotonic()
                try:
                    loop = asyncio.get_running_loop()
                    response = await loop.run_in_executor(
                        self._pool, core.execute_doc, doc
                    )
                finally:
                    self._active -= 1
        except BaseException:
            if waiting:
                self._waiting -= 1
            raise
        busy = time.monotonic() - started
        self.metrics.finished(response, queue_wait, busy)
        # Per-request serve metrics ride in meta: volatile by contract,
        # so response digests stay transport-independent.
        response.setdefault("meta", {})["serve"] = {
            "namespace": core.namespace,
            "queue_wait_s": round(queue_wait, 4),
            "wall_s": round(busy, 4),
        }
        return response

    def _core_for(self, namespace) -> ServiceCore:
        if namespace is not None:
            if not isinstance(namespace, str):
                raise ReproError("namespace must be a string")
            validate_namespace(namespace)
        if namespace not in self._cores:
            self._cores[namespace] = ServiceCore(
                cache_dir=self.cache_dir, namespace=namespace
            )
        return self._cores[namespace]

    def _stats_response(self) -> Dict[str, object]:
        store = ArtifactStore.open(self.cache_dir)
        disk = store.stats()
        body = {
            **self.metrics.doc(),
            "workers": self.workers,
            "queue_bound": self.policy.max_queue_batches,
            "queue_policy": self.policy.queue_policy,
            "queued_now": self._waiting,
            "active_now": self._active,
            "store": {
                "root": str(store.root),
                "entries": disk.entries,
                "payload_bytes": disk.payload_bytes,
                "by_namespace": disk.by_namespace,
            },
        }
        return {
            "kind": "stats", "ok": True,
            "service_schema": SERVICE_SCHEMA_VERSION,
            "body": body, "meta": {},
        }
