"""Seeded random MiniC program generation for differential suites.

Public home of the generator the property suites grew under
``tests/helpers/progen.py`` (which now re-exports from here): every
differential suite — VM equivalence, prescreen hybrid-vs-dynamic, serve
round-trips, recommendation warm/cold — draws from one generator family
instead of copy-pasting program shapes.  The programs are deterministic
per seed: same seed, same source bytes, so cache keys and golden digests
stay stable across suites and sessions.

Families:

- :func:`random_program` — scalar arithmetic with data-dependent control
  flow, array walks, helper calls, and recursion; enough surface to
  shake out operand-slot, phi, call-lowering, and probe-planning bugs;
- :func:`random_roi_program` — the inner loop wrapped in a
  ``#pragma carmot roi``, mixing prescreen-provable and unprovable PSEs;
- :func:`random_pointer_chase_program` — a heap-allocated permutation
  walked by ``cur = next[cur]`` inside an ROI: every iteration's access
  depends on the previous iteration's load, so the chased container
  carries Transfer state and the Sets cannot be proven statically.
"""

import random


def random_program(seed: int) -> str:
    """A seeded random MiniC program (deterministic per ``seed``)."""
    rng = random.Random(seed)
    n = rng.randint(20, 60)
    mod = rng.choice([7, 11, 13, 17])
    mul = rng.choice([3, 5, 9])
    cmp_op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
    bin_op = rng.choice(["&", "|", "^"])
    shift = rng.randint(1, 5)
    rec_depth = rng.randint(3, 9)
    return f"""
int helper(int v) {{
    if (v {cmp_op} {rng.randint(0, 40)}) {{
        return v * {mul} + 1;
    }}
    return v - {rng.randint(1, 5)};
}}
int rec(int d, int acc) {{
    if (d <= 0) {{ return acc; }}
    return rec(d - 1, acc + d * {rng.randint(1, 4)});
}}
int main() {{
    int a[{n}];
    int i;
    int acc = {rng.randint(0, 9)};
    float f = {rng.randint(1, 9)}.5;
    for (i = 0; i < {n}; ++i) {{
        a[i] = helper(i) % {mod};
        acc = acc + a[i];
        if (acc % 2 == 0) {{
            acc = acc {bin_op} (i << {shift});
        }} else {{
            acc = acc - (a[i] >> 1);
        }}
        f = f + 0.25;
    }}
    acc = acc + rec({rec_depth}, 0);
    print_int(acc % 100000);
    print_float(f);
    return acc % 100;
}}
"""


def random_roi_program(seed: int) -> str:
    """A seeded random MiniC program whose inner loop is wrapped in a
    ``#pragma carmot roi`` — the prescreen differential suite's subject.

    The shape deliberately mixes prescreen-provable PSEs (an
    accumulator read+written every iteration, an induction slot) with
    unprovable ones (conditionally-written scalars, accesses behind a
    helper call) so hybrid-vs-dynamic comparisons exercise both the
    strip path and the dynamic fallback within one ROI.
    """
    rng = random.Random(seed ^ 0x5EED)
    n = rng.randint(8, 24)
    outer = rng.randint(2, 5)
    mul = rng.choice([3, 5, 7])
    mod = rng.choice([11, 13, 17])
    cond_mod = rng.choice([2, 3, 4])
    return f"""
int helper(int v) {{
    return v * {mul} + 1;
}}
int main() {{
    int a[{n}];
    int sum;
    int odd;
    sum = 0;
    odd = {rng.randint(0, 5)};
    for (int r = 0; r < {outer}; ++r) {{
        #pragma carmot roi abstraction(parallel_for)
        {{
            for (int i = 0; i < {n}; ++i) {{
                a[i] = helper(i + r) % {mod};
                sum = sum + a[i];
                if (a[i] % {cond_mod} == 0) {{
                    odd = odd + 1;
                }}
            }}
        }}
    }}
    print_int(sum);
    print_int(odd);
    return sum % 100;
}}
"""


def random_pointer_chase_program(seed: int) -> str:
    """A seeded pointer-chase over a heap permutation, ROI-wrapped.

    ``next`` holds a stride-generated permutation of ``0..n-1`` (stride
    coprime to ``n``, so the walk is one full cycle); the ROI chases
    ``cur = next[cur]`` and folds the visited payloads.  The chased
    index is loop-carried — iteration ``k``'s address is iteration
    ``k-1``'s loaded value — so the container is irreducibly Transfer
    and no static prescreen can claim its elements.  Deterministic per
    ``seed``.
    """
    rng = random.Random(seed ^ 0xC4A5E)
    n = rng.choice([16, 24, 32, 40])
    # Any stride coprime to n permutes 0..n-1 in one cycle; n above is
    # divisible by 8, so odd non-unit strides below n qualify.
    stride = rng.choice([s for s in (3, 5, 7, 9, 11, 13) if s < n])
    outer = rng.randint(2, 4)
    mul = rng.choice([3, 5, 7])
    mod = rng.choice([11, 13, 17])
    return f"""
int main() {{
    int *next = (int*) malloc({n} * sizeof(int));
    int *payload = (int*) malloc({n} * sizeof(int));
    int sum = {rng.randint(0, 5)};
    for (int i = 0; i < {n}; ++i) {{
        next[i] = (i + {stride}) % {n};
        payload[i] = (i * {mul}) % {mod};
    }}
    for (int r = 0; r < {outer}; ++r) {{
        #pragma carmot roi abstraction(parallel_for)
        {{
            int cur = r % {n};
            for (int k = 0; k < {n}; ++k) {{
                sum = sum + payload[cur];
                payload[cur] = (payload[cur] + r) % {mod};
                cur = next[cur];
            }}
        }}
    }}
    print_int(sum);
    free((char*) next);
    free((char*) payload);
    return sum % 100;
}}
"""
