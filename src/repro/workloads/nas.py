"""NAS Parallel Benchmark ports: bt, cg, ep, ft, is, lu, mg, sp.

Each port keeps the access-pattern skeleton that drives the original
benchmark's parallel structure: independent-line sweeps (bt/sp), sparse
matvec + reductions (cg), private-counter accumulation behind
``parallel sections`` + ``barrier``/``master`` (ep — the abstraction CARMOT
does not support, §5.1), row-independent butterflies (ft), shared histogram
ranking (is), red-black relaxation (lu), and multigrid smoothing with an
extra ``task`` region (mg — "we add some OpenMP task parallelism to mg").
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.common import (
    Workload,
    loop_pragmas,
    main_wrapper,
    sections_block,
    sub,
)

_EP_CHUNKS = 16


def _bt(params: Dict[str, int], use_case: str) -> str:
    pragmas = loop_pragmas(use_case, "parallel for private(line)")
    body = """
  bt_init();
  for (int sweep = 0; sweep < @SWEEPS@; ++sweep) {
    @PRAGMAS@
    for (int line = 0; line < @LINES@; ++line) {
      bt_solve_line(line);
    }
  }
  float check = 0.0;
  for (int k = 0; k < @LINES@ * @POINTS@; ++k) check += xsol[k];
  print_float(check);"""
    return sub(
        """
float diag[@CELLS@];
float lower[@CELLS@];
float rhs[@CELLS@];
float xsol[@CELLS@];

void bt_init() {
  rand_seed(11);
  for (int k = 0; k < @CELLS@; ++k) {
    diag[k] = 2.0 + rand_float();
    lower[k] = 0.2 * rand_float();
    rhs[k] = rand_float();
    xsol[k] = 0.0;
  }
}

void bt_solve_line(int line) {
  int base = line * @POINTS@;
  xsol[base] = rhs[base] / diag[base];
  for (int i = 1; i < @POINTS@; ++i) {
    int k = base + i;
    xsol[k] = (rhs[k] - lower[k] * xsol[k - 1]) / diag[k];
  }
}

""" + main_wrapper(body, use_case),
        lines=params["lines"],
        points=params["points"],
        cells=params["lines"] * params["points"],
        sweeps=params["sweeps"],
        pragmas=pragmas,
    )


def _cg(params: Dict[str, int], use_case: str) -> str:
    matvec = loop_pragmas(use_case, "parallel for private(row)",
                          roi_name="matvec")
    dot = loop_pragmas(use_case, "parallel for private(i) reduction(+:rho)",
                       roi_name="dot")
    body = """
  cg_init();
  float rho = 0.0;
  for (int iter = 0; iter < @ITERS@; ++iter) {
    @MATVEC@
    for (int row = 0; row < @N@; ++row) {
      float acc = 0.0;
      for (int k = 0; k < @NNZ@; ++k) {
        acc += aval[row * @NNZ@ + k] * p[acol[row * @NNZ@ + k]];
      }
      q[row] = acc;
    }
    rho = 0.0;
    @DOT@
    for (int i = 0; i < @N@; ++i) {
      rho += q[i] * q[i];
    }
    float scale = 1.0 / (1.0 + rho);
    for (int i = 0; i < @N@; ++i) p[i] = q[i] * scale + 0.1;
  }
  print_float(rho);"""
    return sub(
        """
float aval[@NNZTOT@];
int acol[@NNZTOT@];
float p[@N@];
float q[@N@];

void cg_init() {
  rand_seed(23);
  for (int row = 0; row < @N@; ++row) {
    p[row] = rand_float();
    q[row] = 0.0;
    for (int k = 0; k < @NNZ@; ++k) {
      aval[row * @NNZ@ + k] = rand_float();
      acol[row * @NNZ@ + k] = rand_int(@N@);
    }
  }
}

""" + main_wrapper(body, use_case),
        n=params["n"],
        nnz=params["nnz"],
        nnztot=params["n"] * params["nnz"],
        iters=params["iters"],
        matvec=matvec,
        dot=dot,
    )


def _ep(params: Dict[str, int], use_case: str) -> str:
    # The inner pair loop accumulates into *shared* annulus counters: the
    # CARMOT-generated pragma must serialize those updates, while the
    # original uses per-section counters merged under `omp master` — an
    # abstraction mix CARMOT does not support, hence the Figure 6 gap.
    pragmas = loop_pragmas(use_case, "")
    worker_calls = [f"ep_chunk({c});" for c in range(_EP_CHUNKS)]
    if use_case == "openmp":
        parallel = (
            sections_block(worker_calls)
            + "\n  #pragma omp barrier\n  ;\n"
            + "  #pragma omp master\n  { ep_combine(); }"
        )
    else:
        parallel = "  ep_serial();\n  ep_combine();"
    body = f"""
  ep_init();
{parallel}
  print_int(total_hits);"""
    return sub(
        """
int annulus[10];
int chunk_hits[@CHUNKS@];
int total_hits = 0;

void ep_init() {
  rand_seed(31);
  for (int b = 0; b < 10; ++b) annulus[b] = 0;
  for (int c = 0; c < @CHUNKS@; ++c) chunk_hits[c] = 0;
}

void ep_chunk(int c) {
  @PRAGMAS@
  for (int k = 0; k < @PAIRS@; ++k) {
    float x = 2.0 * rand_float() - 1.0;
    float y = 2.0 * rand_float() - 1.0;
    float t = x * x + y * y;
    if (t <= 1.0 && t > 0.0) {
      float factor = sqrt((0.0 - 2.0) * log(t) / t);
      float gx = fabs(x * factor);
      float gy = fabs(y * factor);
      int bucket = int_of_float(fmax(gx, gy));
      if (bucket > 9) bucket = 9;
      annulus[bucket] = annulus[bucket] + 1;
      chunk_hits[c] = chunk_hits[c] + 1;
    }
  }
}

void ep_serial() {
  for (int c = 0; c < @CHUNKS@; ++c) ep_chunk(c);
}

void ep_combine() {
  for (int c = 0; c < @CHUNKS@; ++c) total_hits += chunk_hits[c];
}

""" + main_wrapper(body, use_case),
        chunks=_EP_CHUNKS,
        pairs=params["pairs"],
        pragmas=pragmas,
    )


def _ft(params: Dict[str, int], use_case: str) -> str:
    pragmas = loop_pragmas(use_case, "parallel for private(row)")
    body = """
  ft_init();
  for (int pass = 0; pass < @PASSES@; ++pass) {
    @PRAGMAS@
    for (int row = 0; row < @ROWS@; ++row) {
      ft_butterfly(row);
    }
  }
  float check = 0.0;
  for (int k = 0; k < @ROWS@ * @W@; ++k) check += re[k];
  print_float(check);"""
    return sub(
        """
float re[@SIZE@];
float im[@SIZE@];

void ft_init() {
  rand_seed(41);
  for (int k = 0; k < @ROWS@ * @W@; ++k) {
    re[k] = rand_float();
    im[k] = rand_float();
  }
}

void ft_butterfly(int row) {
  int base = row * @W@;
  for (int span = 1; span < @W@; span = span * 2) {
    for (int j = 0; j + span < @W@; j = j + 2 * span) {
      float angle = 3.14159265 / float_of_int(span + 1);
      float wr = cos(angle);
      float wi = sin(angle);
      int a = base + j;
      int b = base + j + span;
      float tr = wr * re[b] - wi * im[b];
      float ti = wr * im[b] + wi * re[b];
      re[b] = re[a] - tr;
      im[b] = im[a] - ti;
      re[a] = re[a] + tr;
      im[a] = im[a] + ti;
    }
  }
}

""" + main_wrapper(body, use_case),
        rows=params["rows"],
        w=params["width"],
        size=params["rows"] * params["width"],
        passes=params["passes"],
        pragmas=pragmas,
    )


def _is(params: Dict[str, int], use_case: str) -> str:
    critical = ("#pragma omp critical\n      "
                if use_case == "openmp" else "")
    pragmas = loop_pragmas(use_case, "parallel for private(k)")
    body = """
  is_init();
  for (int rep = 0; rep < @REPS@; ++rep) {
    for (int b = 0; b < @BUCKETS@; ++b) bucket[b] = 0;
    @PRAGMAS@
    for (int k = 0; k < @N@; ++k) {
      int key = keys[k];
      int h = key;
      for (int r = 0; r < 24; ++r) {
        h = (h * 31 + k) % 65521;
      }
      key = (key + h % 2) % @BUCKETS@;
      @CRITICAL@{
        bucket[key] = bucket[key] + 1;
      }
    }
    int running = 0;
    for (int b = 0; b < @BUCKETS@; ++b) {
      running += bucket[b];
      rank[b] = running;
    }
  }
  print_int(rank[@BUCKETS@ - 1]);"""
    return sub(
        """
int keys[@N@];
int bucket[@BUCKETS@];
int rank[@BUCKETS@];

void is_init() {
  rand_seed(53);
  for (int k = 0; k < @N@; ++k) keys[k] = rand_int(@BUCKETS@);
}

""" + main_wrapper(body, use_case),
        n=params["n"],
        buckets=params["buckets"],
        reps=params["reps"],
        pragmas=pragmas,
        critical=critical,
    )


def _lu(params: Dict[str, int], use_case: str) -> str:
    even = loop_pragmas(use_case, "parallel for private(row)",
                        roi_name="even_pass")
    odd = loop_pragmas(use_case, "parallel for private(row)",
                       roi_name="odd_pass")
    body = """
  lu_init();
  for (int sweep = 0; sweep < @SWEEPS@; ++sweep) {
    @EVEN@
    for (int row = 0; row < @ROWS@; row = row + 2) {
      lu_relax(row);
    }
    @ODD@
    for (int row = 1; row < @ROWS@; row = row + 2) {
      lu_relax(row);
    }
  }
  float check = 0.0;
  for (int k = 0; k < @ROWS@ * @COLS@; ++k) check += u[k];
  print_float(check);"""
    return sub(
        """
float u[@SIZE@];

void lu_init() {
  rand_seed(61);
  for (int k = 0; k < @ROWS@ * @COLS@; ++k) u[k] = rand_float();
}

void lu_relax(int row) {
  int up = row - 1;
  int down = row + 1;
  if (up < 0) up = row;
  if (down >= @ROWS@) down = row;
  for (int c = 1; c < @COLS@ - 1; ++c) {
    float north = u[up * @COLS@ + c];
    float south = u[down * @COLS@ + c];
    float west = u[row * @COLS@ + c - 1];
    float east = u[row * @COLS@ + c + 1];
    u[row * @COLS@ + c] = 0.25 * (north + south + west + east);
  }
}

""" + main_wrapper(body, use_case),
        rows=params["rows"],
        cols=params["cols"],
        size=params["rows"] * params["cols"],
        sweeps=params["sweeps"],
        even=even,
        odd=odd,
    )


def _mg(params: Dict[str, int], use_case: str) -> str:
    smooth = loop_pragmas(use_case, "parallel for private(i)",
                          roi_name="smooth")
    apply_buf = loop_pragmas(use_case, "parallel for private(i)",
                             roi_name="apply")
    correct = loop_pragmas(use_case, "parallel for private(i)",
                           roi_name="correct")
    task = (loop_pragmas(use_case, "task depend(in: fine) depend(out: coarse)",
                         abstraction="task", roi_name="restrict")
            if use_case == "openmp" else "")
    body = """
  mg_init();
  for (int cycle = 0; cycle < @CYCLES@; ++cycle) {
    @SMOOTH@
    for (int i = 1; i < @FINE@ - 1; ++i) {
      smooth_buf[i] = 0.5 * fine[i] + 0.25 * (fine[i - 1] + fine[i + 1]);
    }
    @APPLY_BUF@
    for (int i = 1; i < @FINE@ - 1; ++i) fine[i] = smooth_buf[i];
    @TASK@
    {
      for (int c = 0; c < @COARSE@; ++c) {
        coarse[c] = 0.5 * (fine[2 * c] + fine[2 * c + 1]);
      }
    }
    for (int c = 1; c < @COARSE@ - 1; ++c) {
      coarse[c] = 0.5 * coarse[c] + 0.25 * (coarse[c - 1] + coarse[c + 1]);
    }
    @CORRECT@
    for (int i = 0; i < @FINE@; ++i) {
      fine[i] = fine[i] + 0.1 * coarse[i / 2];
    }
  }
  float check = 0.0;
  for (int i = 0; i < @FINE@; ++i) check += fine[i];
  print_float(check);"""
    return sub(
        """
float fine[@FINE@];
float smooth_buf[@FINE@];
float coarse[@COARSE@];

void mg_init() {
  rand_seed(71);
  for (int i = 0; i < @FINE@; ++i) {
    fine[i] = rand_float();
    smooth_buf[i] = 0.0;
  }
  for (int c = 0; c < @COARSE@; ++c) coarse[c] = 0.0;
}

""" + main_wrapper(body, use_case),
        fine=params["fine"],
        coarse=params["fine"] // 2,
        cycles=params["cycles"],
        smooth=smooth,
        apply_buf=apply_buf,
        correct=correct,
        task=task,
    )


def _sp(params: Dict[str, int], use_case: str) -> str:
    pragmas = loop_pragmas(use_case, "parallel for private(line)")
    body = """
  sp_init();
  for (int sweep = 0; sweep < @SWEEPS@; ++sweep) {
    @PRAGMAS@
    for (int line = 0; line < @LINES@; ++line) {
      sp_solve_line(line);
    }
  }
  float check = 0.0;
  for (int k = 0; k < @LINES@ * @POINTS@; ++k) check += v[k];
  print_float(check);"""
    return sub(
        """
float v[@SIZE@];
float f[@SIZE@];

void sp_init() {
  rand_seed(83);
  for (int k = 0; k < @LINES@ * @POINTS@; ++k) {
    v[k] = rand_float();
    f[k] = rand_float();
  }
}

void sp_solve_line(int line) {
  int base = line * @POINTS@;
  for (int i = 2; i < @POINTS@ - 2; ++i) {
    int k = base + i;
    v[k] = (f[k] + 0.2 * (v[k - 1] + v[k + 1])
            + 0.1 * (v[k - 2] + v[k + 2])) / 1.6;
  }
}

""" + main_wrapper(body, use_case),
        lines=params["lines"],
        points=params["points"],
        size=params["lines"] * params["points"],
        sweeps=params["sweeps"],
        pragmas=pragmas,
    )


BT = Workload(
    name="bt",
    suite="NAS",
    description="block-tridiagonal solver over independent lines",
    builder=_bt,
    test_params={"lines": 8, "points": 12, "sweeps": 2},
    ref_params={"lines": 32, "points": 24, "sweeps": 6},
)

CG = Workload(
    name="cg",
    suite="NAS",
    description="conjugate-gradient style sparse matvec with dot reduction",
    builder=_cg,
    test_params={"n": 24, "nnz": 4, "iters": 2},
    ref_params={"n": 96, "nnz": 6, "iters": 6},
)

EP = Workload(
    name="ep",
    suite="NAS",
    description="embarrassingly-parallel gaussian pairs; sections+barrier "
                "original that CARMOT cannot fully express",
    builder=_ep,
    test_params={"pairs": 40},
    ref_params={"pairs": 160},
    original_kind="sections",
    unsupported_original=True,
)

FT = Workload(
    name="ft",
    suite="NAS",
    description="row-independent FFT butterfly passes",
    builder=_ft,
    test_params={"rows": 8, "width": 8, "passes": 2},
    ref_params={"rows": 32, "width": 16, "passes": 5},
)

IS = Workload(
    name="is",
    suite="NAS",
    description="integer bucket ranking with a shared histogram",
    builder=_is,
    test_params={"n": 96, "buckets": 16, "reps": 2},
    ref_params={"n": 640, "buckets": 32, "reps": 3},
)

LU = Workload(
    name="lu",
    suite="NAS",
    description="red-black SSOR relaxation",
    builder=_lu,
    test_params={"rows": 8, "cols": 10, "sweeps": 2},
    ref_params={"rows": 32, "cols": 24, "sweeps": 6},
)

MG = Workload(
    name="mg",
    suite="NAS",
    description="multigrid V-cycle with an added task region",
    builder=_mg,
    test_params={"fine": 64, "cycles": 3},
    ref_params={"fine": 512, "cycles": 6},
)

SP = Workload(
    name="sp",
    suite="NAS",
    description="scalar-pentadiagonal line solver",
    builder=_sp,
    test_params={"lines": 8, "points": 14, "sweeps": 2},
    ref_params={"lines": 32, "points": 28, "sweeps": 6},
)
