"""PARSEC 3.0 workload ports: blackscholes, canneal, swaptions.

``blackscholes`` keeps its OpenMP original; ``canneal`` and ``swaptions``
are pthreads programs in PARSEC, so their original parallelism is expressed
as ``omp parallel sections`` over per-thread worker calls (the §5.1
methodology of using the thread entry function as the ROI)."""

from __future__ import annotations

from typing import Dict

from repro.workloads.common import (
    Workload,
    loop_pragmas,
    main_wrapper,
    sections_block,
    sub,
)

_WORKERS = 16


def _blackscholes(params: Dict[str, int], use_case: str) -> str:
    pragmas = loop_pragmas(
        use_case,
        "parallel for private(i) shared(sptprice, strike, rate, volatility,"
        " otime, otype, prices)",
    )
    body = """
  init_options();
  bs_kernel(@RUNS@);
  float total = 0.0;
  for (int i = 0; i < @N@; ++i) total += prices[i];
  print_float(total);"""
    return sub(
        """
float sptprice[@N@];
float strike[@N@];
float rate[@N@];
float volatility[@N@];
float otime[@N@];
int otype[@N@];
float prices[@N@];

float cnd(float d) {
  float k = 1.0 / (1.0 + 0.2316419 * fabs(d));
  float poly = k * (0.31938153 + k * ((0.0 - 0.356563782) + k *
      (1.781477937 + k * ((0.0 - 1.821255978) + k * 1.330274429))));
  float w = 1.0 - 0.39894228 * exp(0.0 - d * d / 2.0) * poly;
  if (d < 0.0) return 1.0 - w;
  return w;
}

float price_option(int i) {
  float s = sptprice[i];
  float x = strike[i];
  float r = rate[i];
  float v = volatility[i];
  float t = otime[i];
  float root = v * sqrt(t);
  float d1 = (log(s / x) + (r + v * v / 2.0) * t) / root;
  float d2 = d1 - root;
  float discount = exp(0.0 - r * t);
  if (otype[i] == 1)
    return x * discount * (1.0 - cnd(d2)) - s * (1.0 - cnd(d1));
  return s * cnd(d1) - x * discount * cnd(d2);
}

void init_options() {
  rand_seed(1234);
  for (int i = 0; i < @N@; ++i) {
    sptprice[i] = 20.0 + 80.0 * rand_float();
    strike[i] = 20.0 + 80.0 * rand_float();
    rate[i] = 0.01 + 0.04 * rand_float();
    volatility[i] = 0.1 + 0.4 * rand_float();
    otime[i] = 0.25 + 0.75 * rand_float();
    otype[i] = rand_int(2);
  }
}

void bs_kernel(int runs) {
  for (int run = 0; run < runs; ++run) {
    @PRAGMAS@
    for (int i = 0; i < @N@; ++i) {
      prices[i] = price_option(i);
    }
  }
}

""" + main_wrapper(body, use_case),
        n=params["n"],
        runs=params["runs"],
        pragmas=pragmas,
    )


def _canneal(params: Dict[str, int], use_case: str) -> str:
    pragmas = loop_pragmas(use_case, "parallel for private(m)")
    critical = ("#pragma omp critical\n        "
                if use_case == "openmp" else "")
    worker_calls = [f"cworker({tid});" for tid in range(_WORKERS)]
    body = f"""
  cinit();
{sections_block(worker_calls) if use_case == "openmp" else "  cserial();"}
  print_int(accepted);
  print_int(net_cost());"""
    return sub(
        """
int locx[@ELEMS@];
int locy[@ELEMS@];
int netfrom[@NETS@];
int netto[@NETS@];
int accepted = 0;

void cinit() {
  rand_seed(77);
  for (int e = 0; e < @ELEMS@; ++e) {
    locx[e] = rand_int(64);
    locy[e] = rand_int(64);
  }
  for (int n = 0; n < @NETS@; ++n) {
    netfrom[n] = rand_int(@ELEMS@);
    netto[n] = rand_int(@ELEMS@);
  }
}

int net_cost() {
  int total = 0;
  for (int n = 0; n < @NETS@; ++n) {
    total += abs(locx[netfrom[n]] - locx[netto[n]]);
    total += abs(locy[netfrom[n]] - locy[netto[n]]);
  }
  return total;
}

int swap_delta(int a, int b) {
  int before = 0;
  int after = 0;
  for (int n = 0; n < @NETS@; ++n) {
    int f = netfrom[n];
    int t = netto[n];
    if (f == a || f == b || t == a || t == b) {
      before += abs(locx[f] - locx[t]) + abs(locy[f] - locy[t]);
      int fx = locx[f]; int fy = locy[f];
      int tx = locx[t]; int ty = locy[t];
      if (f == a) { fx = locx[b]; fy = locy[b]; }
      if (f == b) { fx = locx[a]; fy = locy[a]; }
      if (t == a) { tx = locx[b]; ty = locy[b]; }
      if (t == b) { tx = locx[a]; ty = locy[a]; }
      after += abs(fx - tx) + abs(fy - ty);
    }
  }
  return after - before;
}

void cworker(int tid) {
  @PRAGMAS@
  for (int m = 0; m < @MOVES@; ++m) {
    int a = rand_int(@ELEMS@);
    int b = rand_int(@ELEMS@);
    int d = swap_delta(a, b);
    if (d + 6 < 0) {
      @CRITICAL@{
        int tx = locx[a]; int ty = locy[a];
        locx[a] = locx[b]; locy[a] = locy[b];
        locx[b] = tx; locy[b] = ty;
        accepted++;
      }
    }
  }
}

void cserial() {
  for (int t = 0; t < @WORKERS@; ++t) cworker(t);
}

""" + main_wrapper(body, use_case),
        elems=params["elems"],
        nets=params["nets"],
        moves=params["moves"],
        workers=_WORKERS,
        pragmas=pragmas,
        critical=critical,
    )


def _swaptions(params: Dict[str, int], use_case: str) -> str:
    pragmas = loop_pragmas(use_case, "parallel for private(s)")
    worker_calls = [f"sworker({tid});" for tid in range(_WORKERS)]
    body = f"""
  sinit();
{sections_block(worker_calls) if use_case == "openmp" else "  sserial();"}
  float total = 0.0;
  for (int s = 0; s < @N@; ++s) total += results[s];
  print_float(total);"""
    return sub(
        """
float strikes[@N@];
float maturities[@N@];
float results[@N@];

void sinit() {
  rand_seed(99);
  for (int s = 0; s < @N@; ++s) {
    strikes[s] = 0.02 + 0.08 * rand_float();
    maturities[s] = 1.0 + 9.0 * rand_float();
    results[s] = 0.0;
  }
}

float simulate_swaption(int s) {
  float payoff = 0.0;
  float strike = strikes[s];
  float maturity = maturities[s];
  for (int trial = 0; trial < @TRIALS@; ++trial) {
    float rate_path = 0.04;
    for (int step = 0; step < @STEPS@; ++step) {
      float shock = rand_float() - 0.5;
      rate_path = rate_path + 0.001 * shock * sqrt(maturity);
      if (rate_path < 0.0) rate_path = 0.0;
    }
    float gain = rate_path - strike;
    if (gain > 0.0) payoff += gain;
  }
  return payoff / float_of_int(@TRIALS@);
}

void sworker(int tid) {
  int chunk = @N@ / @WORKERS@;
  int begin = tid * chunk;
  int end = begin + chunk;
  if (tid == @WORKERS@ - 1) end = @N@;
  @PRAGMAS@
  for (int s = begin; s < end; ++s) {
    results[s] = simulate_swaption(s);
  }
}

void sserial() {
  for (int t = 0; t < @WORKERS@; ++t) sworker(t);
}

""" + main_wrapper(body, use_case),
        n=params["n"],
        trials=params["trials"],
        steps=params["steps"],
        workers=_WORKERS,
        pragmas=pragmas,
    )


BLACKSCHOLES = Workload(
    name="blackscholes",
    suite="PARSEC",
    description="Black-Scholes option pricing over an option portfolio",
    builder=_blackscholes,
    test_params={"n": 24, "runs": 1},
    ref_params={"n": 96, "runs": 6},
    original_kind="omp",
)

CANNEAL = Workload(
    name="canneal",
    suite="PARSEC",
    description="simulated-annealing netlist placement (pthreads original)",
    builder=_canneal,
    test_params={"elems": 32, "nets": 20, "moves": 5},
    ref_params={"elems": 64, "nets": 48, "moves": 20},
    original_kind="sections",
)

SWAPTIONS = Workload(
    name="swaptions",
    suite="PARSEC",
    description="Monte-Carlo HJM swaption pricing (pthreads original)",
    builder=_swaptions,
    test_params={"n": 16, "trials": 6, "steps": 10},
    ref_params={"n": 32, "trials": 16, "steps": 16},
    original_kind="sections",
)
