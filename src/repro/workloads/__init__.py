"""The 15-benchmark workload registry (PARSEC + NAS + SPEC ports, §5)."""

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.common import USE_CASES, Workload
from repro.workloads.fuzz import (
    random_pointer_chase_program,
    random_program,
    random_roi_program,
)
from repro.workloads import nas, parsec, spec

#: Every benchmark of the evaluation, in suite order.
ALL_WORKLOADS: List[Workload] = [
    parsec.BLACKSCHOLES,
    parsec.CANNEAL,
    parsec.SWAPTIONS,
    nas.BT,
    nas.CG,
    nas.EP,
    nas.FT,
    nas.IS,
    nas.LU,
    nas.MG,
    nas.SP,
    spec.LBM,
    spec.NAB,
    spec.XZ,
    spec.IMAGICK,
]

_BY_NAME: Dict[str, Workload] = {w.name: w for w in ALL_WORKLOADS}


def workload(name: str) -> Workload:
    if name not in _BY_NAME:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_BY_NAME)}"
        )
    return _BY_NAME[name]


def workload_names() -> List[str]:
    return [w.name for w in ALL_WORKLOADS]


def figure6_workloads() -> List[Workload]:
    return [w for w in ALL_WORKLOADS if w.in_figure6]


__all__ = [
    "ALL_WORKLOADS",
    "USE_CASES",
    "Workload",
    "workload",
    "workload_names",
    "figure6_workloads",
    "random_pointer_chase_program",
    "random_program",
    "random_roi_program",
]
