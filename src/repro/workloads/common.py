"""Workload infrastructure.

Each workload is a MiniC port of one benchmark from the paper's suites
(PARSEC 3.0, NAS, SPEC CPU 2017) shaped to reproduce that benchmark's role
in the evaluation: the access patterns that drive its PSEC, its original
parallel annotations (OpenMP pragmas, or ``parallel sections`` standing in
for pthreads), and its input scaling ("test"/"class A"/"simsmall" vs
"reference"/"class C"/"native" per §5).

A workload builds different source variants per use case:

- ``openmp`` — hot loops carry both the original OpenMP pragma and a
  ``carmot roi abstraction(parallel_for)`` (the §5.1 methodology: ROIs are
  the code regions of the already-present pragmas);
- ``cycles`` — the whole ``main`` body is one
  ``carmot roi abstraction(smart_pointers)`` (the §5.2 methodology);
- ``stats`` — the state-dependence region carries
  ``carmot roi abstraction(stats)`` (the §5.3 methodology).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import WorkloadError

USE_CASES = ("openmp", "cycles", "stats")


@dataclass(frozen=True)
class Workload:
    """One benchmark port."""

    name: str
    suite: str  # "PARSEC" | "NAS" | "SPEC"
    description: str
    builder: Callable[[Dict[str, int], str], str]
    test_params: Dict[str, int]
    ref_params: Dict[str, int]
    #: "omp" = original parallelism is OpenMP pragmas; "sections" = the
    #: original is pthreads/sections-style (canneal, swaptions) or uses
    #: barrier/master synchronization CARMOT cannot express (ep, nab).
    original_kind: str = "omp"
    #: True for ep/nab: part of the original parallelism uses abstractions
    #: CARMOT does not support, so generated pragmas cover less (§5.1).
    unsupported_original: bool = False
    #: Included in the Figure 6 speedup comparison.
    in_figure6: bool = True

    def source(self, params: Optional[Dict[str, int]] = None,
               use_case: str = "openmp") -> str:
        if use_case not in USE_CASES:
            raise WorkloadError(f"unknown use case {use_case!r}")
        return self.builder(dict(params or self.test_params), use_case)

    def test_source(self, use_case: str = "openmp") -> str:
        return self.source(self.test_params, use_case)

    def ref_source(self, use_case: str = "openmp") -> str:
        return self.source(self.ref_params, use_case)


def sub(template: str, **values) -> str:
    """Token substitution: ``@NAME@`` -> value.  (MiniC braces make
    ``str.format`` unusable.)"""
    out = template
    for key, value in values.items():
        out = out.replace(f"@{key.upper()}@", str(value))
    if "@" in out:
        leftover = out[out.index("@"):][:40]
        raise WorkloadError(f"unsubstituted template token near {leftover!r}")
    return out


def loop_pragmas(use_case: str, omp: str,
                 abstraction: str = "parallel_for",
                 roi_name: str = "") -> str:
    """Pragma lines to place on a hot loop for the given use case."""
    name_clause = f" name({roi_name})" if roi_name else ""
    if use_case == "openmp":
        lines = []
        if omp:
            lines.append(f"#pragma omp {omp}")
        lines.append(f"#pragma carmot roi abstraction({abstraction})"
                     f"{name_clause}")
        return "\n  ".join(lines)
    if use_case == "stats":
        return f"#pragma carmot roi abstraction(stats){name_clause}"
    return ""  # cycles: only the whole-main ROI profiles


def main_wrapper(body: str, use_case: str) -> str:
    """Wrap a main body; the cycles use case makes it one big ROI (§5.2)."""
    if use_case == "cycles":
        return (
            "int main() {\n"
            "  #pragma carmot roi abstraction(smart_pointers)"
            " name(whole_program)\n"
            "  {\n" + body + "\n  }\n"
            "  return 0;\n"
            "}\n"
        )
    return "int main() {\n" + body + "\n  return 0;\n}\n"


def sections_block(worker_calls: List[str]) -> str:
    """An ``omp parallel sections`` block invoking one worker per section —
    the stand-in for pthreads-style original parallelism."""
    parts = ["  #pragma omp parallel sections", "  {"]
    for call in worker_calls:
        parts.append("    #pragma omp section")
        parts.append("    { " + call + " }")
    parts.append("  }")
    return "\n".join(parts)
