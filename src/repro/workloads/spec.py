"""SPEC CPU 2017 workload ports: lbm, nab, xz, imagick.

``nab`` recreates the Figure 9 situation: a molecule/strand/residue/atom
structure graph whose back-pointers form a reference cycle spanning several
functions (and, in the original, several files), plus the over-allocation
the paper mentions — the §5.2 leak experiment measures how many bytes
breaking the CARMOT-reported cycle reclaims.  Its OpenMP original uses
``parallel sections`` + ``barrier``, which CARMOT cannot express (§5.1).
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.common import (
    Workload,
    loop_pragmas,
    main_wrapper,
    sections_block,
    sub,
)

_NAB_WORKERS = 16


def _lbm(params: Dict[str, int], use_case: str) -> str:
    pragmas = loop_pragmas(use_case, "parallel for private(c)",
                           roi_name="collide")
    copy = loop_pragmas(use_case, "parallel for private(c)",
                        roi_name="stream")
    body = """
  lbm_init();
  for (int step = 0; step < @STEPS@; ++step) {
    @PRAGMAS@
    for (int c = 1; c < @CELLS@ - 1; ++c) {
      float inflow = 0.5 * src[c] + 0.25 * (src[c - 1] + src[c + 1]);
      float density = inflow * (1.0 - @OMEGA@) + @OMEGA@ * 0.33;
      dst[c] = density;
    }
    @COPY@
    for (int c = 0; c < @CELLS@; ++c) src[c] = dst[c];
  }
  float mass = 0.0;
  for (int c = 0; c < @CELLS@; ++c) mass += src[c];
  print_float(mass);"""
    return sub(
        """
float src[@CELLS@];
float dst[@CELLS@];

void lbm_init() {
  rand_seed(17);
  for (int c = 0; c < @CELLS@; ++c) {
    src[c] = 0.2 + 0.6 * rand_float();
    dst[c] = 0.0;
  }
}

""" + main_wrapper(body, use_case),
        cells=params["cells"],
        steps=params["steps"],
        omega="0.30",
        pragmas=pragmas,
        copy=copy,
    )


def _nab(params: Dict[str, int], use_case: str) -> str:
    pragmas = loop_pragmas(use_case, "parallel for private(a)")
    worker_calls = [f"force_chunk({t});" for t in range(_NAB_WORKERS)]
    if use_case == "openmp":
        parallel = (
            sections_block(worker_calls)
            + "\n  #pragma omp barrier\n  ;\n  reduce_forces();"
        )
    else:
        parallel = "  force_serial();\n  reduce_forces();"
    body = f"""
  MOLECULE_T *mol = newmolecule();
  for (int s = 0; s < @STRANDS@; ++s) addstrand(mol, s);
  positions_init();
{parallel}
  print_int(mol->m_nstrands);
  print_float(energy);"""
    return sub(
        """
typedef struct atom_t {
  struct residue_t *a_residue;
  struct molecule_t *a_molecule;
  float a_charge;
} ATOM_T;

typedef struct residue_t {
  struct strand_t *r_strand;
  struct atom_t *r_atoms[@ATOMS_PER@];
  int r_natoms;
} RESIDUE_T;

typedef struct strand_t {
  struct molecule_t *s_molecule;
  struct residue_t *s_residues[@RES_PER@];
  int s_nresidues;
} STRAND_T;

typedef struct molecule_t {
  struct strand_t *m_strands[@STRANDS@];
  int m_nstrands;
} MOLECULE_T;

float posx[@NATOMS@];
float forces[@NATOMS@];
float partial[@WORKERS@];
float energy = 0.0;

MOLECULE_T *newmolecule() {
  MOLECULE_T *mp = (MOLECULE_T*) malloc(sizeof(MOLECULE_T));
  mp->m_nstrands = 0;
  return mp;
}

ATOM_T *newatom(MOLECULE_T *mp, RESIDUE_T *res) {
  ATOM_T *ap = (ATOM_T*) malloc(sizeof(ATOM_T));
  ap->a_residue = res;
  // The back-pointer closing the Figure 9 reference cycle:
  ap->a_molecule = mp;
  ap->a_charge = rand_float();
  // The "naiveness in the original nab code which over allocates": a
  // scratch buffer per atom that is never freed.
  char *scratch = malloc(@SCRATCH@);
  scratch[0] = 1;
  return ap;
}

RESIDUE_T *copyresidue(MOLECULE_T *mp, STRAND_T *sp) {
  RESIDUE_T *res = (RESIDUE_T*) malloc(sizeof(RESIDUE_T));
  res->r_strand = sp;
  res->r_natoms = 0;
  for (int a = 0; a < @ATOMS_PER@; ++a) {
    res->r_atoms[a] = newatom(mp, res);
    res->r_natoms = res->r_natoms + 1;
  }
  return res;
}

int addstrand(MOLECULE_T *mp, int sname) {
  STRAND_T *sp = (STRAND_T*) malloc(sizeof(STRAND_T));
  sp->s_molecule = mp;
  sp->s_nresidues = 0;
  for (int r = 0; r < @RES_PER@; ++r) {
    sp->s_residues[r] = copyresidue(mp, sp);
    sp->s_nresidues = sp->s_nresidues + 1;
  }
  mp->m_strands[mp->m_nstrands] = sp;
  mp->m_nstrands = mp->m_nstrands + 1;
  return sname;
}

void positions_init() {
  rand_seed(19);
  for (int a = 0; a < @NATOMS@; ++a) {
    posx[a] = rand_float() * 10.0;
    forces[a] = 0.0;
  }
}

int pairlist[@NATOMS@];

void force_chunk(int tid) {
  int chunk = @NATOMS@ / @WORKERS@;
  int begin = tid * chunk;
  int end = begin + chunk;
  if (tid == @WORKERS@ - 1) end = @NATOMS@;
  // Neighbour-list construction: parallel only through the original
  // sections/barrier structure, which CARMOT cannot express (§5.1) — no
  // ROI covers it, so generated pragmas leave it serial.
  for (int a = begin; a < end; ++a) {
    int near = 0;
    for (int b = 0; b < @NATOMS@; ++b) {
      if (fabs(posx[a] - posx[b]) < 2.5) near = near + 1;
    }
    pairlist[a] = near;
  }
  float acc = 0.0;
  @PRAGMAS@
  for (int a = begin; a < end; ++a) {
    float f = 0.0;
    for (int b = 0; b < @NATOMS@; ++b) {
      float d = fabs(posx[a] - posx[b]) + 0.1;
      f += 1.0 / (d * d);
    }
    forces[a] = f;
    acc += f;
  }
  partial[tid] = partial[tid] + acc;
}

void force_serial() {
  for (int t = 0; t < @WORKERS@; ++t) force_chunk(t);
}

void reduce_forces() {
  for (int t = 0; t < @WORKERS@; ++t) energy += partial[t];
}

""" + main_wrapper(body, use_case),
        strands=params["strands"],
        res_per=params["res_per"],
        atoms_per=params["atoms_per"],
        natoms=max(params["strands"] * params["res_per"]
                   * params["atoms_per"], _NAB_WORKERS),
        scratch=params["scratch"],
        workers=_NAB_WORKERS,
        pragmas=pragmas,
    )


def _xz(params: Dict[str, int], use_case: str) -> str:
    pragmas = loop_pragmas(use_case, "parallel for private(blk)")
    body = """
  xz_init();
  @PRAGMAS@
  for (int blk = 0; blk < @BLOCKS@; ++blk) {
    compressed[blk] = compress_block(blk);
  }
  int total = 0;
  for (int blk = 0; blk < @BLOCKS@; ++blk) total += compressed[blk];
  print_int(total);"""
    return sub(
        """
char data[@TOTAL@];
int compressed[@BLOCKS@];

void xz_init() {
  rand_seed(29);
  for (int i = 0; i < @TOTAL@; ++i) {
    data[i] = rand_int(12) + 65;
  }
}

int compress_block(int blk) {
  int base = blk * @BLOCK@;
  int emitted = 0;
  int i = 0;
  while (i < @BLOCK@) {
    int best_len = 0;
    int back = i - @WINDOW@;
    if (back < 0) back = 0;
    for (int cand = back; cand < i; ++cand) {
      int len = 0;
      while (i + len < @BLOCK@
             && data[base + cand + len] == data[base + i + len]
             && len < 16) {
        len = len + 1;
      }
      if (len > best_len) best_len = len;
    }
    if (best_len >= 3) {
      emitted = emitted + 2;
      i = i + best_len;
    } else {
      emitted = emitted + 1;
      i = i + 1;
    }
  }
  return emitted;
}

""" + main_wrapper(body, use_case),
        blocks=params["blocks"],
        block=params["block"],
        total=params["blocks"] * params["block"],
        window=params["window"],
        pragmas=pragmas,
    )


def _imagick(params: Dict[str, int], use_case: str) -> str:
    pragmas = loop_pragmas(use_case, "parallel for private(y)")
    body = """
  im_init();
  for (int pass = 0; pass < @PASSES@; ++pass) {
    @PRAGMAS@
    for (int y = 1; y < @H@ - 1; ++y) {
      convolve_row(y);
    }
    for (int k = 0; k < @H@ * @W@; ++k) image[k] = blurred[k];
  }
  float sum = 0.0;
  for (int k = 0; k < @H@ * @W@; ++k) sum += image[k];
  print_float(sum);"""
    return sub(
        """
float image[@SIZE@];
float blurred[@SIZE@];

void im_init() {
  rand_seed(37);
  for (int k = 0; k < @H@ * @W@; ++k) {
    image[k] = rand_float();
    blurred[k] = 0.0;
  }
}

void convolve_row(int y) {
  for (int x = 1; x < @W@ - 1; ++x) {
    float acc = 4.0 * image[y * @W@ + x];
    acc += image[(y - 1) * @W@ + x] + image[(y + 1) * @W@ + x];
    acc += image[y * @W@ + x - 1] + image[y * @W@ + x + 1];
    blurred[y * @W@ + x] = acc / 8.0;
  }
}

""" + main_wrapper(body, use_case),
        h=params["h"],
        w=params["w"],
        size=params["h"] * params["w"],
        passes=params["passes"],
        pragmas=pragmas,
    )


LBM = Workload(
    name="lbm",
    suite="SPEC",
    description="lattice-Boltzmann stream/collide over a cell line",
    builder=_lbm,
    test_params={"cells": 96, "steps": 3},
    ref_params={"cells": 512, "steps": 10},
)

NAB = Workload(
    name="nab",
    suite="SPEC",
    description="molecular dynamics with the Figure 9 reference cycle; "
                "sections+barrier original",
    builder=_nab,
    test_params={"strands": 2, "res_per": 2, "atoms_per": 2, "scratch": 64},
    ref_params={"strands": 4, "res_per": 4, "atoms_per": 4, "scratch": 64},
    original_kind="sections",
    unsupported_original=True,
)

XZ = Workload(
    name="xz",
    suite="SPEC",
    description="LZ-style block compression with a match-finder window",
    builder=_xz,
    test_params={"blocks": 4, "block": 24, "window": 8},
    ref_params={"blocks": 16, "block": 40, "window": 12},
)

IMAGICK = Workload(
    name="imagick",
    suite="SPEC",
    description="3x3 convolution blur passes over an image",
    builder=_imagick,
    test_params={"h": 10, "w": 12, "passes": 2},
    ref_params={"h": 32, "w": 28, "passes": 8},
)
