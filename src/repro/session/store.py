"""On-disk content-addressed artifact store.

Layout (``STORE_VERSION`` 1)::

    <root>/objects/<first two key chars>/<key>.json          # default namespace
    <root>/ns/<namespace>/objects/<first two>/<key>.json     # client namespaces

Each entry is a small JSON envelope around the artifact payload::

    {"store_version": 1, "key": "<sha256>", "kind": "ir|profile|...",
     "payload_sha256": "<sha256 of payload>", "payload": "<text>"}

Keys are SHA-256 hex digests computed by :mod:`repro.session.keys`; the
payload is an already-canonical artifact string (serialized IR, profile,
…), so equal content is stored once no matter how it was produced.

**Namespaces** partition the store by client, not by content: the same
key may exist in several namespaces, each a fully independent cache (the
``repro serve`` daemon opens one namespaced view per connected client).
A store opened with ``namespace=None`` reads and writes the default
namespace; maintenance operations (``stats``/``verify``/``clear``)
always walk the *whole* root — default plus every client namespace —
and report per-namespace breakdowns.

Robustness contract (exercised by the cache tests and the CI cache-smoke
job): a corrupt entry — truncated file, invalid JSON, bad envelope,
payload hash mismatch, foreign store version — is **evicted and treated
as a miss**, never raised to the caller.  Writes are atomic (an
``O_EXCL``-unique tempfile per writer + ``os.replace``), so concurrent
writers never interleave bytes and a crashed writer leaves at worst a
stray tmp file, not a half-written entry.  Every walker tolerates
entries vanishing mid-iteration (a concurrent ``clear`` or eviction):
multi-client access — many threads or processes hammering one root —
degrades to misses and recomputation, never to exceptions.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro._version import STORE_VERSION

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Reserved display name of the root (non-namespaced) partition in
#: per-namespace breakdowns.
DEFAULT_NAMESPACE = "default"

#: Namespace names come over the serve socket from untrusted clients and
#: become path components: a strict shape check is the traversal guard.
_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class NamespaceError(ValueError):
    """An invalid cache namespace name."""


def validate_namespace(namespace: str) -> str:
    """Return ``namespace`` if it is a legal name, else raise.

    Legal names are 1-64 chars of ``[A-Za-z0-9._-]`` starting with an
    alphanumeric — never ``.``/``..``, a path separator, or the reserved
    ``default`` (which names the root partition).
    """
    if namespace == DEFAULT_NAMESPACE:
        raise NamespaceError(
            f"namespace {DEFAULT_NAMESPACE!r} is reserved for the root "
            f"partition; open the store with namespace=None instead"
        )
    if not _NAMESPACE_RE.match(namespace):
        raise NamespaceError(
            f"invalid namespace {namespace!r}: expected 1-64 chars of "
            f"[A-Za-z0-9._-] starting with an alphanumeric"
        )
    return namespace


def resolve_cache_dir(cache_dir: Optional[str] = None) -> Path:
    """Explicit argument > ``$REPRO_CACHE_DIR`` > ``./.repro-cache``."""
    if cache_dir:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path(DEFAULT_CACHE_DIR)


@dataclass
class StoreStats:
    """Per-store counters; hits/misses/puts are this process only,
    entries/bytes reflect the whole store root on disk (every
    namespace), with ``by_namespace`` breaking them down."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evicted_corrupt: int = 0
    entries: int = 0
    payload_bytes: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    by_namespace: Dict[str, Dict[str, int]] = field(default_factory=dict)


class ArtifactStore:
    """Content-addressed artifact store rooted at one directory.

    ``namespace`` selects the partition ``get``/``put`` operate on
    (``None`` = the root partition); maintenance walks every partition.
    """

    def __init__(self, root: Path, namespace: Optional[str] = None) -> None:
        self.root = Path(root)
        self.namespace = (
            validate_namespace(namespace) if namespace is not None else None
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evicted = 0

    @classmethod
    def open(cls, cache_dir: Optional[str] = None,
             namespace: Optional[str] = None) -> "ArtifactStore":
        return cls(resolve_cache_dir(cache_dir), namespace=namespace)

    # -- paths --------------------------------------------------------------

    def _ns_dir(self) -> Path:
        return self.root / "ns"

    def _objects_dir(self, namespace: Optional[str] = None) -> Path:
        namespace = namespace if namespace is not None else self.namespace
        if namespace is None:
            return self.root / "objects"
        return self._ns_dir() / namespace / "objects"

    def _entry_path(self, key: str) -> Path:
        return self._objects_dir() / key[:2] / f"{key}.json"

    def namespaces(self) -> List[str]:
        """Client namespaces present on disk (the root partition is not
        listed; it always exists conceptually)."""
        ns_dir = self._ns_dir()
        try:
            return sorted(
                p.name for p in ns_dir.iterdir()
                if p.is_dir() and _NAMESPACE_RE.match(p.name)
            )
        except OSError:
            return []

    def _entry_files(self, namespace: Optional[str] = None) -> Iterator[Path]:
        """Entries of one partition; tolerates concurrent deletion of
        buckets and files (a racing ``clear``/eviction)."""
        objects = self._objects_dir(namespace)
        try:
            buckets = sorted(p for p in objects.iterdir() if p.is_dir())
        except OSError:
            return
        for bucket in buckets:
            try:
                yield from sorted(bucket.glob("*.json"))
            except OSError:
                continue

    def _partitions(self) -> Iterator[Tuple[str, Optional[str]]]:
        """(display name, namespace arg) for every partition on disk."""
        yield DEFAULT_NAMESPACE, None
        for name in self.namespaces():
            yield name, name

    # -- core API -----------------------------------------------------------

    def get(self, key: str) -> Optional[str]:
        """The payload stored under ``key``, or None (miss).  Corrupt
        entries are evicted and count as misses."""
        path = self._entry_path(key)
        try:
            raw = path.read_text()
        except (FileNotFoundError, OSError):
            self._count("_misses")
            return None
        payload = self._validate(raw, expect_key=key)
        if payload is None:
            self._evict(path)
            self._count("_misses")
            return None
        self._count("_hits")
        return payload

    def put(self, key: str, payload: str, kind: str) -> None:
        """Store ``payload`` under ``key`` atomically.  Best-effort: an
        unwritable cache directory degrades to a no-op, it never breaks
        the computation whose result it was caching.

        Safe under concurrent multi-client access: ``mkstemp`` opens the
        scratch file with ``O_EXCL`` so no two writers ever share one,
        and ``os.replace`` makes the final rename atomic — a racing
        reader sees either the old complete entry or the new complete
        entry, never a torn write.  Concurrent writers of the same key
        are idempotent (content-addressed payloads are equal by
        construction); last rename wins.
        """
        envelope = json.dumps(
            {
                "store_version": STORE_VERSION,
                "key": key,
                "kind": kind,
                "payload_sha256": _sha256(payload),
                "payload": payload,
            },
            sort_keys=True,
        )
        path = self._entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(envelope)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A concurrent clear may remove the bucket between mkdir and
            # mkstemp/replace; the entry is simply not cached this time.
            return
        self._count("_puts")

    # -- maintenance --------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry in every namespace; returns how many were
        removed."""
        removed = 0
        for _, namespace in self._partitions():
            for path in list(self._entry_files(namespace)):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def verify(self) -> Dict[str, object]:
        """Re-hash every entry in every namespace; evict the corrupt ones.

        Returns ``{"checked": n, "ok": n, "evicted": n, "by_namespace":
        {name: {"checked": n, "ok": n, "evicted": n}}}``.
        """
        totals = {"checked": 0, "ok": 0, "evicted": 0}
        by_namespace: Dict[str, Dict[str, int]] = {}
        for display, namespace in self._partitions():
            counts = {"checked": 0, "ok": 0, "evicted": 0}
            for path in list(self._entry_files(namespace)):
                try:
                    raw = path.read_text()
                except FileNotFoundError:
                    continue  # concurrently evicted/cleared: not ours
                except OSError:
                    self._evict(path)
                    counts["evicted"] += 1
                    counts["checked"] += 1
                    continue
                counts["checked"] += 1
                if self._validate(raw, expect_key=path.stem) is None:
                    self._evict(path)
                    counts["evicted"] += 1
                else:
                    counts["ok"] += 1
            if namespace is not None or counts["checked"]:
                by_namespace[display] = counts
            for field_name in totals:
                totals[field_name] += counts[field_name]
        return {**totals, "by_namespace": by_namespace}

    def stats(self) -> StoreStats:
        stats = StoreStats(
            hits=self._hits, misses=self._misses, puts=self._puts,
            evicted_corrupt=self._evicted,
        )
        for display, namespace in self._partitions():
            entries = 0
            payload_bytes = 0
            for path in self._entry_files(namespace):
                try:
                    doc = json.loads(path.read_text())
                    payload = doc["payload"]
                    kind = doc.get("kind", "?")
                except (OSError, ValueError, KeyError, TypeError):
                    continue
                entries += 1
                payload_bytes += len(payload)
                stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
            stats.entries += entries
            stats.payload_bytes += payload_bytes
            if namespace is not None or entries:
                stats.by_namespace[display] = {
                    "entries": entries, "payload_bytes": payload_bytes,
                }
        return stats

    # -- internals ----------------------------------------------------------

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def _validate(self, raw: str, expect_key: str) -> Optional[str]:
        try:
            doc = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(doc, dict):
            return None
        if doc.get("store_version") != STORE_VERSION:
            return None
        if doc.get("key") != expect_key:
            return None
        payload = doc.get("payload")
        if not isinstance(payload, str):
            return None
        if doc.get("payload_sha256") != _sha256(payload):
            return None
        return payload

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # a concurrent evictor won the race: same outcome
        self._count("_evicted")


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
