"""On-disk content-addressed artifact store.

Layout (``STORE_VERSION`` 1)::

    <root>/objects/<first two key chars>/<key>.json

Each entry is a small JSON envelope around the artifact payload::

    {"store_version": 1, "key": "<sha256>", "kind": "ir|profile|...",
     "payload_sha256": "<sha256 of payload>", "payload": "<text>"}

Keys are SHA-256 hex digests computed by :mod:`repro.session.keys`; the
payload is an already-canonical artifact string (serialized IR, profile,
…), so equal content is stored once no matter how it was produced.

Robustness contract (exercised by the cache tests and the CI cache-smoke
job): a corrupt entry — truncated file, invalid JSON, bad envelope,
payload hash mismatch, foreign store version — is **evicted and treated
as a miss**, never raised to the caller.  Writes are atomic
(tmp + ``os.replace``), so a crashed writer leaves at worst a stray tmp
file, not a half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro._version import STORE_VERSION

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def resolve_cache_dir(cache_dir: Optional[str] = None) -> Path:
    """Explicit argument > ``$REPRO_CACHE_DIR`` > ``./.repro-cache``."""
    if cache_dir:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path(DEFAULT_CACHE_DIR)


@dataclass
class StoreStats:
    """Per-store counters; hits/misses/puts are this process only,
    entries/bytes reflect the store on disk."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evicted_corrupt: int = 0
    entries: int = 0
    payload_bytes: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)


class ArtifactStore:
    """Content-addressed artifact store rooted at one directory."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evicted = 0

    @classmethod
    def open(cls, cache_dir: Optional[str] = None) -> "ArtifactStore":
        return cls(resolve_cache_dir(cache_dir))

    # -- paths --------------------------------------------------------------

    def _objects_dir(self) -> Path:
        return self.root / "objects"

    def _entry_path(self, key: str) -> Path:
        return self._objects_dir() / key[:2] / f"{key}.json"

    def _entry_files(self) -> Iterator[Path]:
        objects = self._objects_dir()
        if not objects.is_dir():
            return
        for bucket in sorted(objects.iterdir()):
            if not bucket.is_dir():
                continue
            yield from sorted(bucket.glob("*.json"))

    # -- core API -----------------------------------------------------------

    def get(self, key: str) -> Optional[str]:
        """The payload stored under ``key``, or None (miss).  Corrupt
        entries are evicted and count as misses."""
        path = self._entry_path(key)
        try:
            raw = path.read_text()
        except (FileNotFoundError, OSError):
            self._misses += 1
            return None
        payload = self._validate(raw, expect_key=key)
        if payload is None:
            self._evict(path)
            self._misses += 1
            return None
        self._hits += 1
        return payload

    def put(self, key: str, payload: str, kind: str) -> None:
        """Store ``payload`` under ``key`` atomically.  Best-effort: an
        unwritable cache directory degrades to a no-op, it never breaks
        the computation whose result it was caching."""
        envelope = json.dumps(
            {
                "store_version": STORE_VERSION,
                "key": key,
                "kind": kind,
                "payload_sha256": _sha256(payload),
                "payload": payload,
            },
            sort_keys=True,
        )
        path = self._entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(envelope)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self._puts += 1

    # -- maintenance --------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def verify(self) -> Dict[str, int]:
        """Re-hash every entry; evict the corrupt ones.

        Returns ``{"checked": n, "ok": n, "evicted": n}``.
        """
        checked = ok = evicted = 0
        for path in list(self._entry_files()):
            checked += 1
            try:
                raw = path.read_text()
            except OSError:
                self._evict(path)
                evicted += 1
                continue
            if self._validate(raw, expect_key=path.stem) is None:
                self._evict(path)
                evicted += 1
            else:
                ok += 1
        return {"checked": checked, "ok": ok, "evicted": evicted}

    def stats(self) -> StoreStats:
        stats = StoreStats(
            hits=self._hits, misses=self._misses, puts=self._puts,
            evicted_corrupt=self._evicted,
        )
        for path in self._entry_files():
            try:
                doc = json.loads(path.read_text())
                payload = doc["payload"]
                kind = doc.get("kind", "?")
            except (OSError, ValueError, KeyError, TypeError):
                continue
            stats.entries += 1
            stats.payload_bytes += len(payload)
            stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
        return stats

    # -- internals ----------------------------------------------------------

    def _validate(self, raw: str, expect_key: str) -> Optional[str]:
        try:
            doc = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(doc, dict):
            return None
        if doc.get("store_version") != STORE_VERSION:
            return None
        if doc.get("key") != expect_key:
            return None
        payload = doc.get("payload")
        if not isinstance(payload, str):
            return None
        if doc.get("payload_sha256") != _sha256(payload):
            return None
        return payload

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self._evicted += 1


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
