"""Toolchain sessions: staged compile/profile with artifact reuse.

See :mod:`repro.session.session` for the stage decomposition,
:mod:`repro.session.store` for the on-disk format, and
:mod:`repro.session.keys` for cache-key anatomy and the invalidation
matrix (also documented in DESIGN.md §9).
"""

from repro.session.keys import (
    codegen_key,
    environment_fingerprint,
    frontend_key,
    pipeline_key,
    profile_key,
    recommend_key,
)
from repro.session.session import (
    STAGES,
    CompileResult,
    ProfileResult,
    Session,
)
from repro.session.store import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ArtifactStore,
    StoreStats,
    resolve_cache_dir,
)

__all__ = [
    "ArtifactStore",
    "CACHE_DIR_ENV",
    "CompileResult",
    "DEFAULT_CACHE_DIR",
    "ProfileResult",
    "STAGES",
    "Session",
    "StoreStats",
    "codegen_key",
    "environment_fingerprint",
    "frontend_key",
    "pipeline_key",
    "profile_key",
    "recommend_key",
    "resolve_cache_dir",
]
