"""Cache-key derivation for session stages.

Every key is the SHA-256 of a canonical JSON document that names the
stage, embeds the **environment fingerprint**, and lists exactly the
inputs the stage's output depends on.  Stage keys compose — the pipeline
key embeds the frontend artifact digest, the profile key embeds the
post-pipeline IR digest — which yields the invalidation matrix for free:

===================  ========  ========  =======  =========
changed input        frontend  pipeline  profile  recommend
===================  ========  ========  =======  =========
source text          miss      miss      miss     miss
pass pipeline/opts   hit       miss      miss     miss
registry version     hit       miss      miss     miss
fault plan/budgets   hit       hit       miss     miss
event encoding       hit       hit       miss     miss
entry/args/costs     hit       hit       miss     miss
recommender select   hit       hit       hit      miss
recommender registry hit       hit       hit      miss
Python major.minor   miss      miss      miss     miss
schema versions      miss      miss      miss     miss
===================  ========  ========  =======  =========

The environment fingerprint (the stale-cache footgun fix) carries the
Python ``major.minor`` and every artifact schema version, so 3.10 and
3.12 CI runners never share entries and a schema bump orphans old
artifacts instead of misreading them.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence

from repro._version import (
    BYTECODE_SCHEMA_VERSION,
    IR_SCHEMA_VERSION,
    PRESCREEN_SCHEMA_VERSION,
    PROFILE_SCHEMA_VERSION,
    RECOMMEND_SCHEMA_VERSION,
    STORE_VERSION,
)
from repro.passes.registry import registry_fingerprint


def environment_fingerprint() -> Dict[str, object]:
    """The part of every cache key that pins the toolchain environment."""
    return {
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
        "ir_schema": IR_SCHEMA_VERSION,
        "profile_schema": PROFILE_SCHEMA_VERSION,
        "bytecode_schema": BYTECODE_SCHEMA_VERSION,
        "prescreen_schema": PRESCREEN_SCHEMA_VERSION,
        "recommend_schema": RECOMMEND_SCHEMA_VERSION,
        "store": STORE_VERSION,
    }


def _digest(stage: str, material: Dict[str, object]) -> str:
    doc = {"stage": stage, "env": environment_fingerprint(), **material}
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def frontend_key(source: str, name: str) -> str:
    """Key of the parse+lower stage output (the pre-pass IR module)."""
    return _digest("frontend", {"source": source, "name": name})


def pipeline_key(
    frontend_digest: str,
    pass_names: Sequence[str],
    abstraction: Optional[str],
    options_doc: Optional[Dict[str, object]],
) -> str:
    """Key of the pass-pipeline+instrument stage output.

    ``pass_names`` is the *parsed* pipeline (aliases expanded, removals
    applied), so ``"carmot"`` and its literal seven-pass spelling share
    one artifact.  The registry fingerprint folds in pass availability
    and :data:`~repro.passes.registry.REGISTRY_VERSION`.
    """
    return _digest("pipeline", {
        "frontend": frontend_digest,
        "passes": list(pass_names),
        "abstraction": abstraction,
        "options": options_doc,
        "registry": registry_fingerprint(),
    })


def prescreen_key(pipeline_key: str) -> str:
    """Key of the prescreen static-facts sidecar.

    Keyed on the *pipeline stage key* (not the IR content digest): the
    facts are a byproduct of exactly that pipeline run, and the pairing
    must be exact — a ``probe.static`` whose ``fact_index`` resolves
    against a foreign sidecar would silently force wrong Sets.  The
    environment fingerprint already carries
    :data:`~repro._version.PRESCREEN_SCHEMA_VERSION`.
    """
    return _digest("prescreen", {"pipeline": pipeline_key})


def codegen_key(ir_digest: str) -> str:
    """Key of the bytecode-lowering stage output (the register bytecode).

    Keyed on the post-pipeline IR *content* digest alone: lowering is a
    pure function of the module, so any pipeline producing identical IR
    shares one bytecode artifact.  The environment fingerprint carries
    :data:`~repro._version.BYTECODE_SCHEMA_VERSION`, so an opcode-layout
    change orphans old entries instead of misreading them.
    """
    return _digest("codegen", {"ir": ir_digest})


def profile_key(
    ir_digest: str,
    mode: str,
    run_config: Dict[str, object],
) -> str:
    """Key of the execute+characterize stage output (the profile).

    Keyed on the post-pipeline IR *content* digest — not the pipeline
    key — so two pipelines producing identical instrumented IR share one
    profile.  ``run_config`` carries everything that steers execution:
    entry/args, cost model, VM budgets, resilience policy, fault plan,
    event encoding, batching, shards.
    """
    return _digest("profile", {
        "ir": ir_digest,
        "mode": mode,
        "run": run_config,
    })


def recommend_key(
    ir_digest: str,
    profile_digest: str,
    recommender_names: Sequence[str],
    abstraction: Optional[str],
    recommender_registry: str,
) -> str:
    """Key of the recommendation-doc stage output.

    Keyed on the post-pipeline IR digest *and* the profile payload
    digest: the doc consumes both dynamic evidence (Sets, ASMT) and
    static evidence (loops, regions, induction facts), and two policies
    can produce byte-identical profiles over different modules.
    ``recommender_names`` is the *parsed* selection (aliases expanded,
    removals applied) and ``abstraction`` the per-request override, so
    ``--recommenders roles`` and its literal spelling share one
    artifact.  ``recommender_registry`` is
    :func:`repro.recommend.registry.recommender_registry_fingerprint`;
    the environment fingerprint already carries
    :data:`~repro._version.RECOMMEND_SCHEMA_VERSION`.
    """
    return _digest("recommend", {
        "ir": ir_digest,
        "profile": profile_digest,
        "recommenders": list(recommender_names),
        "abstraction": abstraction,
        "registry": recommender_registry,
    })


def run_config_doc(
    entry: str,
    args: Sequence[object],
    cost_model,
    max_instructions: int,
    budgets,
    abstraction: Optional[str],
    options,
    config_kwargs: Dict[str, object],
    vm: str = "bytecode",
) -> Dict[str, object]:
    """Canonical, JSON-able view of one ``CompiledProgram.run()`` call.

    ``config_kwargs`` are the ``RuntimeConfig`` overrides the CLI passes
    (``event_encoding``, ``batch_size``, ``pipeline_shards``,
    ``resilience``, ``fault_plan``); dataclass values are flattened via
    ``asdict`` so two equal plans produce equal documents.  ``vm`` names
    the execution engine — both engines are held to identical profiles,
    but keying on it keeps any divergence visible as a cache miss rather
    than silently serving one engine's artifact for the other.
    """
    config: Dict[str, object] = {}
    for key in sorted(config_kwargs):
        config[key] = _jsonable(config_kwargs[key])
    return {
        "entry": entry,
        "args": [_jsonable(a) for a in args],
        "cost_model": _jsonable(cost_model),
        "max_instructions": max_instructions,
        "budgets": _jsonable(budgets),
        "abstraction": abstraction,
        "options": _jsonable(options),
        "config": config,
        "vm": vm,
    }


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if hasattr(value, "__dataclass_fields__"):
        doc = asdict(value)
        return {k: _jsonable(v) for k, v in sorted(doc.items())}
    if hasattr(value, "value") and hasattr(type(value), "__members__"):
        return value.value  # enum
    return repr(value)
