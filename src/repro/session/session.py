"""Staged toolchain sessions with incremental artifact reuse.

A :class:`Session` decomposes the monolithic "parse-and-run" flow into
stages backed by the content-addressed :class:`ArtifactStore`:

``frontend``
    parse + lower + verify → the pre-pass IR module, cached as a
    serialized IR artifact keyed on the source text;
``pipeline``
    pass pipeline + instrumentation → the runnable module, keyed on the
    frontend artifact digest, the parsed pass list, options, and the
    registry fingerprint;
``codegen``
    bytecode lowering → the register bytecode the dispatch-loop VM
    executes, keyed on the post-pipeline IR digest alone (skipped when
    profiling with ``vm="ir"``);
``profile``
    execute + characterize → the full profile (PSECs, ASMT, degradation,
    run result), keyed on the post-pipeline IR digest and the complete
    run configuration.

Stage outputs are *normalized through their artifacts*: even on a cache
miss the stage returns ``deserialize(serialize(result))``, so downstream
stages see bit-identical inputs whether the stage was computed or loaded
— a cold run and a warm run produce byte-identical artifacts.

A stale or foreign artifact (schema bump, hand-edited entry) fails
deserialization and is treated as a miss: the stage recomputes and
overwrites.  With ``enabled=False`` the session runs every stage live —
semantics are identical, nothing touches disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler.carmot import (
    CarmotBuildInfo,
    CarmotOptions,
    carmot_pass_names,
)
from repro.compiler.driver import BuildMode, CompiledProgram
from repro.compiler.driver import frontend as live_frontend
from repro.compiler.driver import _resolve_abstraction
from repro.compiler.prescreen import StaticFacts
from repro.errors import ReproError
from repro.ir.instructions import ProbeStatic
from repro.ir.module import Module
from repro.ir.serialize import (
    IRSerializeError,
    deserialize_module,
    payload_digest,
    serialize_module,
)
from repro.ir.verifier import verify_module
from repro.passes.manager import PassManager, PipelineContext
from repro.passes.registry import parse_pipeline
from repro.resilience.budgets import ExecutionBudgets
from repro.runtime.config import naive_policy_for, policy_for
from repro.runtime.psec_json import (
    Profile,
    ProfileSerializeError,
    deserialize_profile,
    serialize_profile,
)
from repro.session import keys
from repro.session.store import ArtifactStore
from repro.vm.bytecode import (
    BytecodeSerializeError,
    deserialize_bytecode,
    serialize_bytecode,
)
from repro.vm.codegen import lower_module
from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel

#: Stage names, in flow order (parse/lower share the frontend artifact,
#: pass-pipeline/instrument share the pipeline artifact, the prescreen
#: static-facts sidecar rides with the pipeline artifact, lowering owns
#: the bytecode artifact, execute/characterize share the profile
#: artifact, and recommendation-doc generation owns the recommend
#: artifact).  The ``prescreen`` stage only appears in ``stages`` when
#: the compiled module carries ``probe.static`` instructions; the
#: ``recommend`` stage only for :meth:`Session.recommend_doc` callers.
STAGES = ("frontend", "pipeline", "prescreen", "codegen", "profile",
          "recommend")


def _needs_static_facts(module: Module) -> bool:
    """True when the module carries ``probe.static`` instructions (and so
    cannot be profiled without its prescreen sidecar)."""
    return any(
        isinstance(instr, ProbeStatic)
        for function in module.functions.values()
        for instr in function.instructions()
    )


@dataclass
class CompileResult:
    """Outcome of the frontend+pipeline stages."""

    program: CompiledProgram
    #: Content digest of the post-pipeline IR artifact (profile key input).
    ir_digest: str
    #: Stage → "hit" | "miss" for this call.
    stages: Dict[str, str]


@dataclass
class ProfileResult:
    """Outcome of the full flow up to characterization.

    ``runtime`` is a live ``CarmotRuntime`` on a cache miss and a
    :class:`~repro.runtime.psec_json.Profile` on a hit; both expose
    ``psecs``/``asmt``/``degradation``/``degraded``/``module``, which is
    every attribute the read-side consumers use.
    """

    result: object
    runtime: object
    program: CompiledProgram
    #: Canonical serialized profile (byte-identical warm vs cold).
    payload: str
    stages: Dict[str, str]
    #: Content digest of the post-pipeline IR artifact (recommend key
    #: input — two policies can produce byte-identical profiles over
    #: different modules).
    ir_digest: str = ""

    @property
    def cached(self) -> bool:
        return self.stages.get("profile") == "hit"


class Session:
    """One toolchain session over one artifact store.

    ``namespace`` selects a per-client partition of the store (the
    ``repro serve`` daemon opens one namespaced session per client);
    ``None`` is the default root partition.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        enabled: bool = True,
        namespace: Optional[str] = None,
    ) -> None:
        self.store: Optional[ArtifactStore] = (
            ArtifactStore.open(cache_dir, namespace=namespace)
            if enabled else None
        )

    # -- stage: frontend (parse + lower) ------------------------------------

    def frontend(self, source: str, name: str = "program"
                 ) -> Tuple[Module, str, str]:
        """Returns ``(module, artifact_digest, "hit"|"miss")``."""
        key = keys.frontend_key(source, name)
        payload = self.store.get(key) if self.store else None
        if payload is not None:
            try:
                return deserialize_module(payload), \
                    payload_digest(payload), "hit"
            except IRSerializeError:
                payload = None
        module = live_frontend(source, name)
        payload = serialize_module(module)
        if self.store is not None:
            self.store.put(key, payload, "ir")
        # Normalize through the artifact (see module docstring).
        return deserialize_module(payload), payload_digest(payload), "miss"

    # -- stage: pass pipeline + instrument ----------------------------------

    def compile(
        self,
        source: str,
        pipeline: Union[str, Sequence[str]] = "carmot",
        abstraction: Optional[str] = None,
        options: Optional[CarmotOptions] = None,
        name: str = "program",
    ) -> CompileResult:
        """The session analogue of ``compile_pipeline``."""
        if pipeline == "carmot" and options is not None:
            # The bare alias is frozen at default options; expand it from
            # the caller's options instead (``compile_carmot`` parity) so
            # option-gated passes like prescreen actually run.
            names = list(carmot_pass_names(options))
        else:
            names = parse_pipeline(pipeline)
        module, frontend_digest, frontend_stage = self.frontend(source, name)
        if "naive-instrument" in names:
            mode = BuildMode.NAIVE
            policy = naive_policy_for(_resolve_abstraction(module, abstraction))
        elif "instrument" in names:
            mode = BuildMode.CARMOT
            policy = policy_for(_resolve_abstraction(module, abstraction))
        else:
            mode = BuildMode.BASELINE
            policy = None
        if mode is BuildMode.CARMOT:
            options = options or CarmotOptions()
        key = keys.pipeline_key(
            frontend_digest, names, abstraction, keys._jsonable(options)
        )
        facts_key = keys.prescreen_key(key)
        payload = self.store.get(key) if self.store else None
        compiled: Optional[Module] = None
        build_info = None
        instrument_report = None
        pass_report = None
        prescreen_stage: Optional[str] = None
        if payload is not None:
            try:
                compiled = deserialize_module(payload)
                pipeline_stage = "hit"
            except IRSerializeError:
                payload = None
            else:
                if _needs_static_facts(compiled):
                    # The IR artifact is unusable without its sidecar: a
                    # missing/corrupt facts artifact demotes the whole
                    # pipeline stage to a miss rather than crashing at
                    # probe.static resolution time.
                    facts_payload = (
                        self.store.get(facts_key) if self.store else None
                    )
                    try:
                        if facts_payload is None:
                            raise ReproError("missing prescreen sidecar")
                        compiled.static_facts = StaticFacts.deserialize(
                            facts_payload
                        )
                        prescreen_stage = "hit"
                    except ReproError:
                        compiled = None
                        payload = None
        if compiled is None:
            build_info = (
                CarmotBuildInfo(options=options)
                if mode is BuildMode.CARMOT else None
            )
            ctx = PipelineContext(policy=policy, build_info=build_info)
            manager = PassManager(names, ctx)
            pass_report = manager.run(module)
            if build_info is not None:
                build_info.pass_report = pass_report
            verify_module(module)
            instrument_report = ctx.instrument_report
            payload = serialize_module(module)
            if self.store is not None:
                self.store.put(key, payload, "ir")
            facts = module.static_facts
            compiled = deserialize_module(payload)
            if facts is not None:
                facts_payload = facts.serialize()
                if self.store is not None:
                    self.store.put(facts_key, facts_payload, "prescreen")
                # Normalize through the artifact (see module docstring).
                compiled.static_facts = StaticFacts.deserialize(facts_payload)
                prescreen_stage = "miss"
            pipeline_stage = "miss"
        program = CompiledProgram(
            compiled, mode, policy=policy,
            options=options if mode is BuildMode.CARMOT else None,
            build_info=build_info, report=instrument_report,
            pass_report=pass_report,
        )
        stages = {"frontend": frontend_stage, "pipeline": pipeline_stage}
        if prescreen_stage is not None:
            stages["prescreen"] = prescreen_stage
        return CompileResult(
            program=program,
            ir_digest=payload_digest(payload),
            stages=stages,
        )

    # -- stage: bytecode lowering --------------------------------------------

    def codegen(self, program: CompiledProgram, ir_digest: str) -> str:
        """Lower (cached) the program to register bytecode.

        Attaches the bytecode to ``program.bytecode`` and returns
        ``"hit"`` or ``"miss"``.  Cold and warm paths both normalize
        through the serialized artifact, then rebind the variable table
        against the program's own IR module — the engine keys access
        sites by ``VarInfo`` identity, so the bytecode must share the
        module's instances, not deserialized clones.
        """
        key = keys.codegen_key(ir_digest)
        payload = self.store.get(key) if self.store else None
        if payload is not None:
            try:
                bytecode = deserialize_bytecode(payload)
            except BytecodeSerializeError:
                payload = None
            else:
                bytecode.rebind_vars(program.module)
                program.bytecode = bytecode
                return "hit"
        payload = serialize_bytecode(lower_module(program.module))
        if self.store is not None:
            self.store.put(key, payload, "bytecode")
        # Normalize through the artifact (see module docstring).
        bytecode = deserialize_bytecode(payload)
        bytecode.rebind_vars(program.module)
        program.bytecode = bytecode
        return "miss"

    # -- stage: execute + characterize --------------------------------------

    def profile(
        self,
        source: str,
        pipeline: Union[str, Sequence[str]] = "carmot",
        abstraction: Optional[str] = None,
        options: Optional[CarmotOptions] = None,
        name: str = "program",
        entry: str = "main",
        args: Tuple = (),
        cost_model: CostModel = DEFAULT_COST_MODEL,
        max_instructions: int = 2_000_000_000,
        budgets: Optional[ExecutionBudgets] = None,
        vm: str = "bytecode",
        trace: bool = False,
        **config_kwargs,
    ) -> ProfileResult:
        """Compile (cached) and profile (cached): the full flow.

        On a profile hit the VM never executes — result, PSECs, ASMT and
        degradation report all load from the artifact.  ``vm`` selects
        the execution engine; the codegen stage only runs (and only
        appears in ``stages``) for the bytecode engine.
        """
        compile_result = self.compile(
            source, pipeline, abstraction=abstraction, options=options,
            name=name,
        )
        program = compile_result.program
        if program.mode is BuildMode.BASELINE:
            raise ReproError(
                "cannot profile an uninstrumented (baseline) build"
            )
        stages = dict(compile_result.stages)
        if vm == "bytecode":
            stages["codegen"] = self.codegen(
                program, compile_result.ir_digest
            )
        run_doc = keys.run_config_doc(
            entry, args, cost_model, max_instructions, budgets,
            abstraction, options, config_kwargs, vm=vm,
        )
        key = keys.profile_key(
            compile_result.ir_digest, program.mode.value, run_doc
        )
        payload = self.store.get(key) if self.store else None
        if payload is not None:
            try:
                profile = deserialize_profile(payload, program.module)
                stages["profile"] = "hit"
                return ProfileResult(
                    result=profile.result, runtime=profile, program=program,
                    payload=payload, stages=stages,
                    ir_digest=compile_result.ir_digest,
                )
            except ProfileSerializeError:
                payload = None
        result, runtime = program.run(
            entry=entry, args=args, cost_model=cost_model,
            max_instructions=max_instructions, budgets=budgets,
            vm=vm, trace=trace, **config_kwargs,
        )
        payload = serialize_profile(runtime, result)
        if self.store is not None:
            self.store.put(key, payload, "profile")
        stages["profile"] = "miss"
        return ProfileResult(
            result=result, runtime=runtime, program=program,
            payload=payload, stages=stages,
            ir_digest=compile_result.ir_digest,
        )

    # -- stage: recommendation doc -------------------------------------------

    def recommend_doc(
        self,
        profiled: ProfileResult,
        abstraction: Optional[str] = None,
        recommenders: Optional[str] = None,
    ) -> Tuple[Dict[str, object], str]:
        """The (cached) RecommendationDoc for a profiled program.

        Returns ``(doc, "hit" | "miss")``.  Keyed on the post-pipeline
        IR digest, the profile payload digest, the parsed recommender
        selection, and the recommender registry fingerprint — so a warm
        doc is byte-identical to a cold one and any recommender change
        orphans old entries (the environment fingerprint carries
        ``RECOMMEND_SCHEMA_VERSION``).
        """
        import json

        from repro.recommend import (
            RECOMMEND_DOC_FORMAT,
            build_recommendation_doc,
            parse_selection,
            recommender_registry_fingerprint,
        )
        from repro._version import RECOMMEND_SCHEMA_VERSION
        from repro.runtime.psec_json import profile_digest

        names = parse_selection(recommenders)
        key = keys.recommend_key(
            profiled.ir_digest, profile_digest(profiled.payload), names,
            abstraction, recommender_registry_fingerprint(),
        )
        payload = self.store.get(key) if self.store else None
        if payload is not None:
            try:
                doc = json.loads(payload)
            except ValueError:
                payload = None
            else:
                if (isinstance(doc, dict)
                        and doc.get("format") == RECOMMEND_DOC_FORMAT
                        and doc.get("version") == RECOMMEND_SCHEMA_VERSION):
                    return doc, "hit"
                payload = None
        doc = build_recommendation_doc(
            profiled.runtime, abstraction=abstraction,
            recommender_names=names,
        )
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        if self.store is not None:
            self.store.put(key, payload, "recommend")
        # Normalize through the artifact (see module docstring).
        return json.loads(payload), "miss"
