"""IR instructions.

Each instruction carries a :class:`SourceLoc` pointing back at the MiniC
source — the reversible source↔IR mapping of §4.4 — and, where relevant, the
:class:`VarInfo` of the source variable it touches.  Instrumentation probes
(``Probe*``) are ordinary instructions inserted by the CARMOT compiler
(:mod:`repro.compiler`); the VM forwards them to the runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.lang import types as ct
from repro.lang.tokens import SourcePos
from repro.ir.values import Const, FunctionRef, Temp, Value

#: Arithmetic/bitwise binary opcodes.
ARITH_OPS = ("add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr")
#: Comparison opcodes (result is int 0/1).
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Commutative/associative opcodes usable in an OpenMP ``reduction`` clause,
#: mapped to the pragma operator spelling (§3.2).
REDUCIBLE_OPS = {
    "add": "+",
    "mul": "*",
    "and": "&",
    "or": "|",
    "xor": "^",
    "min": "min",
    "max": "max",
}


@dataclass(frozen=True, slots=True)
class SourceLoc:
    """Where an instruction came from in the MiniC source.

    Frozen and interned: :meth:`of` returns one shared instance per
    (filename, line, column), so the runtime can key intern tables on
    location identity without holding duplicate objects per instruction.
    """

    filename: str
    line: int
    column: int

    _interned = {}

    @classmethod
    def of(cls, pos: SourcePos) -> "SourceLoc":
        key = (pos.filename, pos.line, pos.column)
        loc = cls._interned.get(key)
        if loc is None:
            loc = cls(*key)
            cls._interned[key] = loc
        return loc

    @classmethod
    def interned_count(cls) -> int:
        return len(cls._interned)

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}"


@dataclass
class VarInfo:
    """Identity of a source-level variable PSE.

    ``uid`` matches :class:`repro.lang.sema.Symbol.uid`; ``storage`` is one
    of ``local``/``param``/``global``.  The VM keys variable PSEs on this.
    """

    uid: int
    name: str
    storage: str
    ty: ct.Type
    decl_loc: Optional[SourceLoc] = None

    def __str__(self) -> str:
        return f"{self.storage}:{self.name}#{self.uid}"


class Instr:
    """Base class.  Subclasses define ``result`` (Temp or None) and operands."""

    loc: Optional[SourceLoc]
    result: Optional[Temp]

    def operands(self) -> Sequence[Value]:
        return ()

    def replace_operand(self, old: Value, new: Value) -> None:
        for fname in self.__dataclass_fields__:  # type: ignore[attr-defined]
            if getattr(self, fname) is old:
                setattr(self, fname, new)

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Jump, Branch, Ret))


@dataclass
class Alloca(Instr):
    """Reserve a stack slot for a source variable (or a lowering temp)."""

    result: Temp
    allocated_type: ct.Type
    var: Optional[VarInfo]
    loc: Optional[SourceLoc] = None
    promoted: bool = False  # set by selective mem2reg (opt 4)

    def __str__(self) -> str:
        who = f" ; {self.var}" if self.var else ""
        return f"{self.result} = alloca {self.allocated_type}{who}"


@dataclass
class Load(Instr):
    result: Temp
    ptr: Value
    var: Optional[VarInfo] = None
    loc: Optional[SourceLoc] = None

    def operands(self):
        return (self.ptr,)

    def __str__(self) -> str:
        return f"{self.result} = load {self.result.ty}, {self.ptr}"


@dataclass
class Store(Instr):
    value: Value
    ptr: Value
    var: Optional[VarInfo] = None
    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def operands(self):
        return (self.value, self.ptr)

    def __str__(self) -> str:
        return f"store {self.value}, {self.ptr}"


@dataclass
class BinOp(Instr):
    result: Temp
    op: str
    lhs: Value
    rhs: Value
    loc: Optional[SourceLoc] = None

    def operands(self):
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"{self.result} = {self.op} {self.lhs}, {self.rhs}"


@dataclass
class Cast(Instr):
    """Type conversion: int<->float, pointer bitcasts, int<->pointer."""

    result: Temp
    value: Value
    loc: Optional[SourceLoc] = None

    def operands(self):
        return (self.value,)

    def __str__(self) -> str:
        return f"{self.result} = cast {self.value} to {self.result.ty}"


@dataclass
class AddrOffset(Instr):
    """Address arithmetic: ``result = base + index * scale + offset``.

    The single explicit addressing instruction (GEP analogue).  Keeping
    index and scale structured—rather than folding into generic adds—is what
    lets the aggregation optimization (§4.4.2) recognise loop-indexed
    contiguous accesses.
    """

    result: Temp
    base: Value
    index: Value
    scale: int
    offset: int
    loc: Optional[SourceLoc] = None

    def operands(self):
        return (self.base, self.index)

    def __str__(self) -> str:
        return (
            f"{self.result} = addr {self.base} + {self.index}*{self.scale}"
            f" + {self.offset}"
        )


@dataclass
class Phi(Instr):
    """SSA φ-node, introduced only by mem2reg (baseline ``-O3`` analogue and
    the selective mem2reg of §4.4.4).  ``incomings`` maps predecessor Block
    -> incoming value; all φs at a block head read their inputs atomically.
    """

    result: Temp
    incomings: "dict"  # Block -> Value
    loc: Optional[SourceLoc] = None

    def operands(self):
        return tuple(self.incomings.values())

    def replace_operand(self, old: Value, new: Value) -> None:
        for block, value in list(self.incomings.items()):
            if value is old:
                self.incomings[block] = new

    def __str__(self) -> str:
        arms = ", ".join(
            f"[{getattr(b, 'label', b)}: {v}]" for b, v in self.incomings.items()
        )
        return f"{self.result} = phi {arms}"


@dataclass
class Call(Instr):
    result: Optional[Temp]
    callee: Value  # FunctionRef or a pointer-typed value
    args: List[Value]
    loc: Optional[SourceLoc] = None
    #: True when the Pintool must be enabled around this call because it may
    #: reach precompiled code (§4.5); opt 6 clears it where provably safe.
    pin_gated: bool = False

    def operands(self):
        return (self.callee, *self.args)

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.callee is old:
            self.callee = new
        self.args = [new if arg is old else arg for arg in self.args]

    @property
    def direct_target(self) -> Optional[str]:
        if isinstance(self.callee, FunctionRef):
            return self.callee.name
        return None

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        gate = " !pin" if self.pin_gated else ""
        prefix = f"{self.result} = " if self.result else ""
        return f"{prefix}call {self.callee}({args}){gate}"


@dataclass
class Jump(Instr):
    target: "object"  # Block; stringly typed to avoid a circular import
    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def __str__(self) -> str:
        return f"jmp {getattr(self.target, 'label', self.target)}"


@dataclass
class Branch(Instr):
    cond: Value
    if_true: "object"
    if_false: "object"
    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def operands(self):
        return (self.cond,)

    def __str__(self) -> str:
        t = getattr(self.if_true, "label", self.if_true)
        f = getattr(self.if_false, "label", self.if_false)
        return f"br {self.cond}, {t}, {f}"


@dataclass
class Ret(Instr):
    value: Optional[Value]
    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def operands(self):
        return (self.value,) if self.value is not None else ()

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


@dataclass
class RoiBegin(Instr):
    """Marks entry into a Region Of Interest (a new dynamic invocation)."""

    roi_id: int
    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def __str__(self) -> str:
        return f"roi.begin #{self.roi_id}"


@dataclass
class RoiEnd(Instr):
    roi_id: int
    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def __str__(self) -> str:
        return f"roi.end #{self.roi_id}"


@dataclass
class RoiReset(Instr):
    """Starts a new PSEC *epoch* for a loop-body ROI.

    Emitted before each entry to the ROI's loop: dependences crossing whole
    loop executions are not loop-carried within one execution, so each
    execution is characterized separately and the per-epoch PSECs combine
    by the §4.2 set-union rule (Cloneable ⊔ Transfer → Transfer).
    """

    roi_id: int
    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def __str__(self) -> str:
        return f"roi.reset #{self.roi_id}"


@dataclass
class OmpRegionBegin(Instr):
    """Marks the start of an original-OpenMP region (critical/ordered/task/
    section/master/parallel_sections).  Zero-cost marker used by the
    parallel-execution simulator (Figure 6) — CARMOT itself ignores these.
    """

    kind: str
    region_id: int
    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def __str__(self) -> str:
        return f"omp.begin {self.kind} #{self.region_id}"


@dataclass
class OmpRegionEnd(Instr):
    kind: str
    region_id: int
    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def __str__(self) -> str:
        return f"omp.end {self.kind} #{self.region_id}"


@dataclass
class OmpBarrier(Instr):
    """An original ``#pragma omp barrier`` site (unsupported by CARMOT §5.1)."""

    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def __str__(self) -> str:
        return "omp.barrier"


# ---------------------------------------------------------------------------
# Instrumentation probes (inserted by repro.compiler, consumed by the VM,
# forwarded to the CARMOT runtime).
# ---------------------------------------------------------------------------


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class ProbeAccess(Instr):
    """Report one PSE access to the runtime.

    ``ptr`` is the accessed address (for variables: the alloca/global
    address), ``size`` the accessed bytes.  ``count``/``stride`` describe an
    aggregated range access (opt 2): the probe covers ``count`` elements of
    ``size`` bytes, ``stride`` bytes apart, starting at ``ptr``.
    """

    kind: AccessKind
    ptr: Value
    size: int
    var: Optional[VarInfo] = None
    loc: Optional[SourceLoc] = None
    count: Optional[Value] = None
    stride: int = 0
    result: Optional[Temp] = None
    #: Dense call-site id assigned at compile time by the ``site-table``
    #: analysis; the packed runtime encoding uses it to avoid interning
    #: (var, loc) per event.  Not part of the IR dump.
    site_id: Optional[int] = None

    def operands(self):
        ops: Tuple[Value, ...] = (self.ptr,)
        if self.count is not None:
            ops = ops + (self.count,)
        return ops

    def __str__(self) -> str:
        agg = f" x{self.count}/{self.stride}" if self.count is not None else ""
        who = f" ; {self.var}" if self.var else ""
        return f"probe.{self.kind.value} {self.ptr}, {self.size}{agg}{who}"


@dataclass
class ProbeClassify(Instr):
    """Directly force FSA set membership for a PSE (opt 3, §4.4).

    Emitted once (e.g. in a loop preheader) for PSEs whose classification is
    provable at compile time: ``states`` is a string drawn from "IOC" —
    the FSA sets the PSE's membership without per-access events.
    """

    states: str
    ptr: Value
    size: int
    var: Optional[VarInfo] = None
    loc: Optional[SourceLoc] = None
    count: Optional[Value] = None
    stride: int = 0
    #: Explicit ROI binding: hoisted classify probes execute outside the
    #: ROI's dynamic extent (e.g. in a loop preheader) and must name it.
    roi_id: Optional[int] = None
    result: Optional[Temp] = None
    #: See :attr:`ProbeAccess.site_id`.
    site_id: Optional[int] = None

    def operands(self):
        ops: Tuple[Value, ...] = (self.ptr,)
        if self.count is not None:
            ops = ops + (self.count,)
        return ops

    def __str__(self) -> str:
        return f"probe.classify[{self.states}] {self.ptr}, {self.size}"


@dataclass
class ProbeStatic(Instr):
    """Bind one statically-classified PSE to its prescreen verdict.

    Inserted by the ``prescreen`` pass immediately after ``roi.begin``
    for every PSE whose Set membership was proved at compile time (the
    access probes for such PSEs are stripped).  Unlike the probe family
    above, executing it emits **no event**: the runtime synchronously
    notes "fact ``fact_index`` resolved to address ``ptr`` in this
    invocation" and merges the verdict into the PSEC at ``finish()``.
    ``fact_index`` indexes the module's :class:`StaticFacts` sidecar,
    which carries the once/steady verdict letters and (for element
    facts) the range geometry.
    """

    ptr: Value
    roi_id: int
    fact_index: int
    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def operands(self):
        return (self.ptr,)

    def __str__(self) -> str:
        return f"probe.static #{self.roi_id}/{self.fact_index} {self.ptr}"


@dataclass
class ProbeEscape(Instr):
    """Report a pointer escape: ``value`` (a pointer) stored into ``ptr``.

    Feeds the Reachability Graph (§3.1) used for reference-cycle discovery.
    """

    value: Value
    ptr: Value
    loc: Optional[SourceLoc] = None
    result: Optional[Temp] = None

    def operands(self):
        return (self.value, self.ptr)

    def __str__(self) -> str:
        return f"probe.escape {self.value} -> {self.ptr}"
