"""Versioned, canonical IR serialization with byte-stable digests.

:func:`serialize_module` turns a :class:`~repro.ir.module.Module` into
canonical JSON text: key-sorted objects, compact separators, arrays in
module order, and every unordered table (the VarInfo table, the struct
table) emitted in a sorted order that does not depend on hash seeds or
walk order.  The guarantees the artifact cache is built on:

- ``serialize(deserialize(serialize(m))) == serialize(m)`` byte for byte;
- :func:`module_digest` is stable across process runs (no reliance on
  ``PYTHONHASHSEED``);
- a deserialized module is a faithful working copy: the verifier passes,
  passes can keep transforming it (def/use identity of temps, interned
  :class:`SourceLoc` and :class:`VarInfo` instances, live label/temp
  counters), and the VM executes it to the same PSECs.

The format carries ``IR_SCHEMA_VERSION``; any shape change must bump it
(stale cache entries then simply never match — see
:mod:`repro.session.keys`).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from typing import Dict, List, Optional, Tuple

from repro._version import IR_SCHEMA_VERSION
from repro.errors import ReproError
from repro.lang import types as ct
from repro.lang.pragmas import CarmotRoi, OmpPragma
from repro.lang.tokens import SourcePos
from repro.ir.instructions import (
    AccessKind,
    AddrOffset,
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Instr,
    Jump,
    Load,
    OmpBarrier,
    OmpRegionBegin,
    OmpRegionEnd,
    Phi,
    ProbeAccess,
    ProbeClassify,
    ProbeEscape,
    ProbeStatic,
    Ret,
    RoiBegin,
    RoiEnd,
    RoiReset,
    SourceLoc,
    Store,
    VarInfo,
)
from repro.ir.module import (
    Block,
    Function,
    GlobalVariable,
    Module,
    OmpLoopInfo,
    OmpRegionInfo,
    RoiInfo,
)
from repro.ir.values import Const, FunctionRef, GlobalRef, Temp, Value

FORMAT_NAME = "repro-ir"


class IRSerializeError(ReproError):
    """Malformed or incompatible serialized IR."""


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

_SCALARS = {
    ct.VoidType: "void",
    ct.IntType: "int",
    ct.CharType: "char",
    ct.FloatType: "float",
}


def _collect_structs(ty: ct.Type, structs: Dict[str, ct.StructType]) -> None:
    if isinstance(ty, ct.StructType):
        if ty.name in structs:
            return
        structs[ty.name] = ty
        for _, ftype in ty.fields:
            _collect_structs(ftype, structs)
    elif isinstance(ty, ct.PointerType):
        _collect_structs(ty.pointee, structs)
    elif isinstance(ty, ct.ArrayType):
        _collect_structs(ty.element, structs)
    elif isinstance(ty, ct.FunctionType):
        _collect_structs(ty.return_type, structs)
        for param in ty.param_types:
            _collect_structs(param, structs)


def _enc_type(ty: ct.Type, structs: Dict[str, ct.StructType]):
    tag = _SCALARS.get(type(ty))
    if tag is not None:
        return tag
    if isinstance(ty, ct.PointerType):
        return ["p", _enc_type(ty.pointee, structs)]
    if isinstance(ty, ct.ArrayType):
        return ["a", _enc_type(ty.element, structs), ty.count]
    if isinstance(ty, ct.StructType):
        _collect_structs(ty, structs)
        return ["s", ty.name]
    if isinstance(ty, ct.FunctionType):
        _collect_structs(ty, structs)
        return [
            "f",
            _enc_type(ty.return_type, structs),
            [_enc_type(p, structs) for p in ty.param_types],
        ]
    raise IRSerializeError(f"unserializable type {ty!r}")


_SCALAR_TYPES = {
    "void": ct.VOID,
    "int": ct.INT,
    "char": ct.CHAR,
    "float": ct.FLOAT,
}


def _dec_type(doc, structs: Dict[str, ct.StructType]) -> ct.Type:
    if isinstance(doc, str):
        try:
            return _SCALAR_TYPES[doc]
        except KeyError:
            raise IRSerializeError(f"unknown scalar type tag {doc!r}")
    tag = doc[0]
    if tag == "p":
        return ct.PointerType(_dec_type(doc[1], structs))
    if tag == "a":
        return ct.ArrayType(_dec_type(doc[1], structs), doc[2])
    if tag == "s":
        struct = structs.get(doc[1])
        if struct is None:
            raise IRSerializeError(f"reference to undeclared struct {doc[1]!r}")
        return struct
    if tag == "f":
        return ct.FunctionType(
            _dec_type(doc[1], structs),
            tuple(_dec_type(p, structs) for p in doc[2]),
        )
    raise IRSerializeError(f"unknown type tag {tag!r}")


# ---------------------------------------------------------------------------
# Source locations, variables, pragmas
# ---------------------------------------------------------------------------


def _enc_loc(loc: Optional[SourceLoc]):
    if loc is None:
        return None
    return [loc.filename, loc.line, loc.column]


def _dec_loc(doc) -> Optional[SourceLoc]:
    if doc is None:
        return None
    # SourceLoc.of interns: every deserialized reference to one source
    # position shares one instance, same as a freshly-lowered module.
    return SourceLoc.of(SourcePos(doc[0], doc[1], doc[2]))


def _enc_pragma(pragma) -> Dict:
    if isinstance(pragma, CarmotRoi):
        return {
            "kind": "carmot",
            "raw": pragma.raw,
            "abstraction": pragma.abstraction,
            "name": pragma.name,
        }
    if isinstance(pragma, OmpPragma):
        return {
            "kind": "omp",
            "raw": pragma.raw,
            "directive": pragma.directive,
            "private": list(pragma.private),
            "firstprivate": list(pragma.firstprivate),
            "lastprivate": list(pragma.lastprivate),
            "shared": list(pragma.shared),
            "reductions": [list(r) for r in pragma.reductions],
            "depend_in": list(pragma.depend_in),
            "depend_out": list(pragma.depend_out),
            "num_threads": pragma.num_threads,
            "has_ordered_clause": pragma.has_ordered_clause,
        }
    raise IRSerializeError(f"unserializable pragma {pragma!r}")


def _dec_pragma(doc: Dict):
    if doc["kind"] == "carmot":
        return CarmotRoi(
            raw=doc["raw"], abstraction=doc["abstraction"], name=doc["name"]
        )
    if doc["kind"] == "omp":
        return OmpPragma(
            raw=doc["raw"],
            directive=doc["directive"],
            private=list(doc["private"]),
            firstprivate=list(doc["firstprivate"]),
            lastprivate=list(doc["lastprivate"]),
            shared=list(doc["shared"]),
            reductions=[tuple(r) for r in doc["reductions"]],
            depend_in=list(doc["depend_in"]),
            depend_out=list(doc["depend_out"]),
            num_threads=doc["num_threads"],
            has_ordered_clause=doc["has_ordered_clause"],
        )
    raise IRSerializeError(f"unknown pragma kind {doc['kind']!r}")


class _Encoder:
    """Single-pass module walk accumulating the shared tables."""

    def __init__(self) -> None:
        self.structs: Dict[str, ct.StructType] = {}
        self.vars: Dict[int, VarInfo] = {}

    def ty(self, ty: ct.Type):
        return _enc_type(ty, self.structs)

    def var(self, var: Optional[VarInfo]):
        if var is None:
            return None
        known = self.vars.get(var.uid)
        if known is None:
            self.vars[var.uid] = var
        return var.uid

    def value(self, value: Optional[Value]):
        if value is None:
            return None
        if isinstance(value, Const):
            return ["c", value.value, self.ty(value.ty)]
        if isinstance(value, Temp):
            return ["t", value.name, self.ty(value.ty)]
        if isinstance(value, GlobalRef):
            return ["g", value.name, self.ty(value.ty)]
        if isinstance(value, FunctionRef):
            return ["fr", value.name, self.ty(value.ty), value.is_builtin]
        raise IRSerializeError(f"unserializable value {value!r}")

    # -- instructions -------------------------------------------------------

    def instr(self, instr: Instr) -> Dict:
        loc = _enc_loc(instr.loc)
        if isinstance(instr, Alloca):
            return {
                "op": "alloca", "result": self.value(instr.result),
                "ty": self.ty(instr.allocated_type),
                "var": self.var(instr.var), "loc": loc,
                "promoted": instr.promoted,
            }
        if isinstance(instr, Load):
            return {
                "op": "load", "result": self.value(instr.result),
                "ptr": self.value(instr.ptr), "var": self.var(instr.var),
                "loc": loc,
            }
        if isinstance(instr, Store):
            return {
                "op": "store", "value": self.value(instr.value),
                "ptr": self.value(instr.ptr), "var": self.var(instr.var),
                "loc": loc,
            }
        if isinstance(instr, BinOp):
            return {
                "op": "bin", "o": instr.op,
                "result": self.value(instr.result),
                "lhs": self.value(instr.lhs), "rhs": self.value(instr.rhs),
                "loc": loc,
            }
        if isinstance(instr, Cast):
            return {
                "op": "cast", "result": self.value(instr.result),
                "value": self.value(instr.value), "loc": loc,
            }
        if isinstance(instr, AddrOffset):
            return {
                "op": "addr", "result": self.value(instr.result),
                "base": self.value(instr.base),
                "index": self.value(instr.index),
                "scale": instr.scale, "offset": instr.offset, "loc": loc,
            }
        if isinstance(instr, Phi):
            return {
                "op": "phi", "result": self.value(instr.result),
                "incomings": [
                    [block.label, self.value(value)]
                    for block, value in instr.incomings.items()
                ],
                "loc": loc,
            }
        if isinstance(instr, Call):
            return {
                "op": "call", "result": self.value(instr.result),
                "callee": self.value(instr.callee),
                "args": [self.value(a) for a in instr.args],
                "loc": loc, "pin_gated": instr.pin_gated,
            }
        if isinstance(instr, Jump):
            return {"op": "jmp", "target": instr.target.label, "loc": loc}
        if isinstance(instr, Branch):
            return {
                "op": "br", "cond": self.value(instr.cond),
                "t": instr.if_true.label, "f": instr.if_false.label,
                "loc": loc,
            }
        if isinstance(instr, Ret):
            return {"op": "ret", "value": self.value(instr.value), "loc": loc}
        if isinstance(instr, RoiBegin):
            return {"op": "roi.begin", "roi": instr.roi_id, "loc": loc}
        if isinstance(instr, RoiEnd):
            return {"op": "roi.end", "roi": instr.roi_id, "loc": loc}
        if isinstance(instr, RoiReset):
            return {"op": "roi.reset", "roi": instr.roi_id, "loc": loc}
        if isinstance(instr, OmpRegionBegin):
            return {
                "op": "omp.begin", "kind": instr.kind,
                "region": instr.region_id, "loc": loc,
            }
        if isinstance(instr, OmpRegionEnd):
            return {
                "op": "omp.end", "kind": instr.kind,
                "region": instr.region_id, "loc": loc,
            }
        if isinstance(instr, OmpBarrier):
            return {"op": "omp.barrier", "loc": loc}
        if isinstance(instr, ProbeAccess):
            return {
                "op": "probe.access", "kind": instr.kind.value,
                "ptr": self.value(instr.ptr), "size": instr.size,
                "var": self.var(instr.var), "loc": loc,
                "count": self.value(instr.count), "stride": instr.stride,
                "site": instr.site_id,
            }
        if isinstance(instr, ProbeClassify):
            return {
                "op": "probe.classify", "states": instr.states,
                "ptr": self.value(instr.ptr), "size": instr.size,
                "var": self.var(instr.var), "loc": loc,
                "count": self.value(instr.count), "stride": instr.stride,
                "roi": instr.roi_id, "site": instr.site_id,
            }
        if isinstance(instr, ProbeStatic):
            return {
                "op": "probe.static", "ptr": self.value(instr.ptr),
                "roi": instr.roi_id, "fact": instr.fact_index, "loc": loc,
            }
        if isinstance(instr, ProbeEscape):
            return {
                "op": "probe.escape", "value": self.value(instr.value),
                "ptr": self.value(instr.ptr), "loc": loc,
            }
        raise IRSerializeError(f"unserializable instruction {instr!r}")


# ---------------------------------------------------------------------------
# serialize
# ---------------------------------------------------------------------------


def serialize_module(module: Module) -> str:
    """Canonical JSON text for ``module`` (see module docstring)."""
    enc = _Encoder()
    functions = []
    for function in module.functions.values():
        instr_index: Dict[int, Tuple[int, int]] = {}
        blocks = []
        for bi, block in enumerate(function.blocks):
            instrs = []
            for ii, instr in enumerate(block.instrs):
                instr_index[id(instr)] = (bi, ii)
                instrs.append(enc.instr(instr))
            blocks.append({"label": block.label, "instrs": instrs})
        var_allocas = []
        for uid, alloca in function.var_allocas.items():
            enc.var(alloca.var)
            where = instr_index.get(id(alloca))
            if where is None:
                # mem2reg detaches promoted allocas from their block but
                # keeps them in var_allocas (consumers read .promoted and
                # .result off them) — serialize those inline.
                var_allocas.append([uid, enc.instr(alloca)])
            else:
                var_allocas.append([uid, [where[0], where[1]]])
        functions.append({
            "name": function.name,
            "type": enc.ty(function.type),
            "params": [enc.var(v) for v in function.param_vars],
            "blocks": blocks,
            "var_allocas": var_allocas,
            "conv_opt": function.conventionally_optimized,
        })
    globals_doc = [
        {
            "name": gvar.name, "ty": enc.ty(gvar.ty),
            "var": enc.var(gvar.var), "init": gvar.init,
        }
        for gvar in module.globals.values()
    ]
    rois = [
        {
            "roi_id": roi.roi_id, "name": roi.name,
            "abstraction": roi.abstraction, "function": roi.function,
            "loc": _enc_loc(roi.loc), "is_loop_body": roi.is_loop_body,
            "induction_var": enc.var(roi.induction_var),
            "original_omp": [_enc_pragma(p) for p in roi.original_omp],
        }
        for roi in module.rois.values()
    ]
    omp_regions = [
        {
            "region_id": region.region_id, "kind": region.kind,
            "pragma": _enc_pragma(region.pragma),
            "function": region.function, "loc": _enc_loc(region.loc),
        }
        for region in module.omp_regions.values()
    ]
    omp_loops = [
        {
            "pragma": _enc_pragma(loop.pragma), "function": loop.function,
            "loc": _enc_loc(loop.loc), "roi_id": loop.roi_id,
        }
        for loop in module.omp_loops
    ]
    site_table = [
        [enc.var(var), _enc_loc(loc)] for var, loc in module.site_table
    ]
    # Shared tables, emitted in content order (uid / name), never walk or
    # hash order — this is what keeps digests process-stable.
    vars_doc = [
        {
            "uid": var.uid, "name": var.name, "storage": var.storage,
            "ty": enc.ty(var.ty), "decl_loc": _enc_loc(var.decl_loc),
        }
        for _, var in sorted(enc.vars.items())
    ]
    structs_doc = [
        {
            "name": name,
            "fields": [
                [fname, _enc_type(ftype, enc.structs)]
                for fname, ftype in enc.structs[name].fields
            ],
        }
        for name in sorted(enc.structs)
    ]
    doc = {
        "format": FORMAT_NAME,
        "version": IR_SCHEMA_VERSION,
        "name": module.name,
        "structs": structs_doc,
        "vars": vars_doc,
        "globals": globals_doc,
        "functions": functions,
        "rois": rois,
        "omp_regions": omp_regions,
        "omp_loops": omp_loops,
        "site_table": site_table,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def module_digest(module: Module) -> str:
    """SHA-256 over the canonical serialization — the cache identity of
    an IR module, stable across processes and machines."""
    return hashlib.sha256(serialize_module(module).encode("utf-8")).hexdigest()


def payload_digest(payload: str) -> str:
    """SHA-256 of an already-serialized artifact payload."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# deserialize
# ---------------------------------------------------------------------------

_TRAILING_INT = re.compile(r"(\d+)$")
_TEMP_NAME = re.compile(r"^t(\d+)$")


class _Decoder:
    def __init__(self, doc: Dict) -> None:
        self.structs: Dict[str, ct.StructType] = {}
        # Two-phase struct build supports self-referential bodies.
        for struct_doc in doc["structs"]:
            self.structs[struct_doc["name"]] = ct.StructType(
                struct_doc["name"]
            )
        for struct_doc in doc["structs"]:
            self.structs[struct_doc["name"]].set_body([
                (fname, _dec_type(ftype, self.structs))
                for fname, ftype in struct_doc["fields"]
            ])
        #: uid → one shared VarInfo instance (source-variable identity).
        self.vars: Dict[int, VarInfo] = {}
        for var_doc in doc["vars"]:
            self.vars[var_doc["uid"]] = VarInfo(
                uid=var_doc["uid"], name=var_doc["name"],
                storage=var_doc["storage"],
                ty=_dec_type(var_doc["ty"], self.structs),
                decl_loc=_dec_loc(var_doc["decl_loc"]),
            )
        #: Interned value instances: def/use identity of temps (and the
        #: cheap sharing of refs) survives the round-trip, which is what
        #: lets passes keep running on a deserialized module.
        self._values: Dict[Tuple, Value] = {}

    def ty(self, doc) -> ct.Type:
        return _dec_type(doc, self.structs)

    def var(self, uid: Optional[int]) -> Optional[VarInfo]:
        if uid is None:
            return None
        try:
            return self.vars[uid]
        except KeyError:
            raise IRSerializeError(f"reference to unknown var uid {uid}")

    def value(self, doc) -> Optional[Value]:
        if doc is None:
            return None
        key = json.dumps(doc, sort_keys=True)
        known = self._values.get(key)
        if known is not None:
            return known
        tag = doc[0]
        if tag == "c":
            value: Value = Const(doc[1], self.ty(doc[2]))
        elif tag == "t":
            value = Temp(doc[1], self.ty(doc[2]))
        elif tag == "g":
            value = GlobalRef(doc[1], self.ty(doc[2]))
        elif tag == "fr":
            value = FunctionRef(doc[1], self.ty(doc[2]), doc[3])
        else:
            raise IRSerializeError(f"unknown value tag {tag!r}")
        self._values[key] = value
        return value

    def instr(self, doc: Dict, blocks: Dict[str, Block]) -> Instr:
        op = doc["op"]
        loc = _dec_loc(doc["loc"])
        if op == "alloca":
            return Alloca(
                result=self.value(doc["result"]),
                allocated_type=self.ty(doc["ty"]),
                var=self.var(doc["var"]), loc=loc,
                promoted=doc["promoted"],
            )
        if op == "load":
            return Load(
                result=self.value(doc["result"]),
                ptr=self.value(doc["ptr"]), var=self.var(doc["var"]),
                loc=loc,
            )
        if op == "store":
            return Store(
                value=self.value(doc["value"]),
                ptr=self.value(doc["ptr"]), var=self.var(doc["var"]),
                loc=loc,
            )
        if op == "bin":
            return BinOp(
                result=self.value(doc["result"]), op=doc["o"],
                lhs=self.value(doc["lhs"]), rhs=self.value(doc["rhs"]),
                loc=loc,
            )
        if op == "cast":
            return Cast(
                result=self.value(doc["result"]),
                value=self.value(doc["value"]), loc=loc,
            )
        if op == "addr":
            return AddrOffset(
                result=self.value(doc["result"]),
                base=self.value(doc["base"]),
                index=self.value(doc["index"]),
                scale=doc["scale"], offset=doc["offset"], loc=loc,
            )
        if op == "phi":
            return Phi(
                result=self.value(doc["result"]),
                incomings={
                    blocks[label]: self.value(value)
                    for label, value in doc["incomings"]
                },
                loc=loc,
            )
        if op == "call":
            return Call(
                result=self.value(doc["result"]),
                callee=self.value(doc["callee"]),
                args=[self.value(a) for a in doc["args"]],
                loc=loc, pin_gated=doc["pin_gated"],
            )
        if op == "jmp":
            return Jump(target=blocks[doc["target"]], loc=loc)
        if op == "br":
            return Branch(
                cond=self.value(doc["cond"]), if_true=blocks[doc["t"]],
                if_false=blocks[doc["f"]], loc=loc,
            )
        if op == "ret":
            return Ret(value=self.value(doc["value"]), loc=loc)
        if op == "roi.begin":
            return RoiBegin(roi_id=doc["roi"], loc=loc)
        if op == "roi.end":
            return RoiEnd(roi_id=doc["roi"], loc=loc)
        if op == "roi.reset":
            return RoiReset(roi_id=doc["roi"], loc=loc)
        if op == "omp.begin":
            return OmpRegionBegin(
                kind=doc["kind"], region_id=doc["region"], loc=loc
            )
        if op == "omp.end":
            return OmpRegionEnd(
                kind=doc["kind"], region_id=doc["region"], loc=loc
            )
        if op == "omp.barrier":
            return OmpBarrier(loc=loc)
        if op == "probe.access":
            return ProbeAccess(
                kind=AccessKind(doc["kind"]), ptr=self.value(doc["ptr"]),
                size=doc["size"], var=self.var(doc["var"]), loc=loc,
                count=self.value(doc["count"]), stride=doc["stride"],
                site_id=doc["site"],
            )
        if op == "probe.classify":
            return ProbeClassify(
                states=doc["states"], ptr=self.value(doc["ptr"]),
                size=doc["size"], var=self.var(doc["var"]), loc=loc,
                count=self.value(doc["count"]), stride=doc["stride"],
                roi_id=doc["roi"], site_id=doc["site"],
            )
        if op == "probe.static":
            return ProbeStatic(
                ptr=self.value(doc["ptr"]), roi_id=doc["roi"],
                fact_index=doc["fact"], loc=loc,
            )
        if op == "probe.escape":
            return ProbeEscape(
                value=self.value(doc["value"]), ptr=self.value(doc["ptr"]),
                loc=loc,
            )
        raise IRSerializeError(f"unknown instruction op {op!r}")


def deserialize_module(text: str) -> Module:
    """Rebuild a :class:`Module` from :func:`serialize_module` output."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as error:
        raise IRSerializeError(f"malformed IR artifact: {error}")
    if not isinstance(doc, dict) or doc.get("format") != FORMAT_NAME:
        raise IRSerializeError("not a serialized IR module")
    if doc.get("version") != IR_SCHEMA_VERSION:
        raise IRSerializeError(
            f"IR artifact version {doc.get('version')!r} does not match "
            f"this toolchain's {IR_SCHEMA_VERSION}"
        )
    dec = _Decoder(doc)
    module = Module(doc["name"])
    for gvar_doc in doc["globals"]:
        module.globals[gvar_doc["name"]] = GlobalVariable(
            name=gvar_doc["name"], ty=dec.ty(gvar_doc["ty"]),
            var=dec.var(gvar_doc["var"]), init=gvar_doc["init"],
        )
    for fdoc in doc["functions"]:
        function = Function(fdoc["name"], dec.ty(fdoc["type"]))
        function.param_vars = [dec.var(uid) for uid in fdoc["params"]]
        function.conventionally_optimized = fdoc["conv_opt"]
        blocks: Dict[str, Block] = {}
        max_label = -1
        for bdoc in fdoc["blocks"]:
            block = Block(bdoc["label"])
            block.parent = function
            function.blocks.append(block)
            blocks[block.label] = block
            match = _TRAILING_INT.search(block.label)
            if match:
                max_label = max(max_label, int(match.group(1)))
        max_temp = -1
        for bdoc, block in zip(fdoc["blocks"], function.blocks):
            for idoc in bdoc["instrs"]:
                instr = dec.instr(idoc, blocks)
                block.instrs.append(instr)
                result = instr.result
                if result is not None:
                    match = _TEMP_NAME.match(result.name)
                    if match:
                        max_temp = max(max_temp, int(match.group(1)))
        for uid, where in fdoc["var_allocas"]:
            if isinstance(where, dict):
                function.var_allocas[uid] = dec.instr(where, blocks)
            else:
                bi, ii = where
                function.var_allocas[uid] = function.blocks[bi].instrs[ii]
        # Fresh counters resume past every used label/temp so later
        # passes can keep allocating without collisions.
        function._label_counter = itertools.count(max_label + 1)
        function._temp_counter = itertools.count(max_temp + 1)
        module.add_function(function)
    max_roi = -1
    for rdoc in doc["rois"]:
        roi = RoiInfo(
            roi_id=rdoc["roi_id"], name=rdoc["name"],
            abstraction=rdoc["abstraction"], function=rdoc["function"],
            loc=_dec_loc(rdoc["loc"]), is_loop_body=rdoc["is_loop_body"],
            induction_var=dec.var(rdoc["induction_var"]),
            original_omp=[_dec_pragma(p) for p in rdoc["original_omp"]],
        )
        module.rois[roi.roi_id] = roi
        max_roi = max(max_roi, roi.roi_id)
    max_region = -1
    for rdoc in doc["omp_regions"]:
        region = OmpRegionInfo(
            region_id=rdoc["region_id"], kind=rdoc["kind"],
            pragma=_dec_pragma(rdoc["pragma"]), function=rdoc["function"],
            loc=_dec_loc(rdoc["loc"]),
        )
        module.omp_regions[region.region_id] = region
        max_region = max(max_region, region.region_id)
    for ldoc in doc["omp_loops"]:
        module.omp_loops.append(OmpLoopInfo(
            pragma=_dec_pragma(ldoc["pragma"]), function=ldoc["function"],
            loc=_dec_loc(ldoc["loc"]), roi_id=ldoc["roi_id"],
        ))
    module.site_table = [
        (dec.var(uid), _dec_loc(loc)) for uid, loc in doc["site_table"]
    ]
    module._roi_counter = itertools.count(max_roi + 1)
    module._region_counter = itertools.count(max_region + 1)
    return module
