"""Three-address IR: values, instructions, modules, lowering, verifier."""

from repro.ir.instructions import (
    AccessKind,
    AddrOffset,
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Instr,
    Jump,
    Load,
    OmpBarrier,
    OmpRegionBegin,
    OmpRegionEnd,
    ProbeAccess,
    ProbeClassify,
    ProbeEscape,
    Ret,
    RoiBegin,
    RoiEnd,
    SourceLoc,
    Store,
    VarInfo,
)
from repro.ir.lowering import lower_program
from repro.ir.module import Block, Function, GlobalVariable, Module, RoiInfo
from repro.ir.values import (
    Const,
    FunctionRef,
    GlobalRef,
    Temp,
    Value,
    const_float,
    const_int,
)
from repro.ir.verifier import verify_module

__all__ = [
    "AccessKind", "AddrOffset", "Alloca", "BinOp", "Branch", "Call", "Cast",
    "Instr", "Jump", "Load", "OmpBarrier", "OmpRegionBegin", "OmpRegionEnd",
    "ProbeAccess", "ProbeClassify", "ProbeEscape", "Ret", "RoiBegin",
    "RoiEnd", "SourceLoc", "Store", "VarInfo", "lower_program", "Block",
    "Function", "GlobalVariable", "Module", "RoiInfo", "Const",
    "FunctionRef", "GlobalRef", "Temp", "Value", "const_float", "const_int",
    "verify_module",
]
