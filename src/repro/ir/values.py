"""IR values: constants, virtual registers, and symbol references.

The IR is deliberately LLVM-shaped but *unoptimized by construction*: every
source variable lives in an ``alloca`` slot and every use goes through an
explicit load/store.  §2.3 of the paper explains why PSEC needs exactly this
form — ``mem2reg`` would destroy the mapping between source variables and IR
locations.  Temporaries (:class:`Temp`) hold intermediate expression values
only and never correspond to source PSEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.lang import types as ct


class Value:
    """Base class for IR operand values."""

    ty: ct.Type


@dataclass(frozen=True)
class Const(Value):
    """A literal constant (int, float, or null pointer as integer 0)."""

    value: Union[int, float]
    ty: ct.Type

    def __str__(self) -> str:
        return f"{self.ty} {self.value}"


@dataclass(frozen=True)
class Temp(Value):
    """A virtual register, assigned exactly once by the builder."""

    name: str
    ty: ct.Type

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class GlobalRef(Value):
    """The address of a global variable (type: pointer to the global)."""

    name: str
    ty: ct.Type  # PointerType(global's type)

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class FunctionRef(Value):
    """A direct reference to a function or builtin."""

    name: str
    ty: ct.Type  # FunctionType
    is_builtin: bool = False

    def __str__(self) -> str:
        prefix = "!" if self.is_builtin else "@"
        return f"{prefix}{self.name}"


def const_int(value: int) -> Const:
    return Const(int(value), ct.INT)


def const_float(value: float) -> Const:
    return Const(float(value), ct.FLOAT)


def null_pointer(pointee: ct.Type = ct.CHAR) -> Const:
    return Const(0, ct.PointerType(pointee))
