"""AST-to-IR lowering.

Lowering is deliberately *naive*, mirroring CARMOT's use of clang without
optimizations (§4.4): every source variable — including loop counters —
receives an ``alloca`` slot and every use is an explicit load/store, so the
IR retains a reversible mapping onto source PSEs.  The PSEC-specific
optimizations in :mod:`repro.compiler` later claw back the cost where that
is provably safe.

ROI handling: a ``#pragma carmot roi`` on a loop statement wraps the *body*
of the loop (each iteration is one dynamic invocation, the shape Figure 1
uses); on any other statement it wraps that statement.  ``roi.begin`` /
``roi.end`` markers are emitted on every path out of the region, including
``break``/``continue``/``return``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, Union

from repro import builtins_spec
from repro.errors import LoweringError
from repro.lang import astnodes as ast
from repro.lang import types as ct
from repro.lang.pragmas import CarmotRoi, OmpPragma
from repro.lang.sema import SemaResult, Symbol, SymbolKind
from repro.ir.instructions import (
    AccessKind,
    AddrOffset,
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Instr,
    Jump,
    Load,
    OmpBarrier,
    OmpRegionBegin,
    OmpRegionEnd,
    Ret,
    RoiBegin,
    RoiEnd,
    RoiReset,
    SourceLoc,
    Store,
    Temp,
    VarInfo,
)
from repro.ir.module import Block, Function, GlobalVariable, Module, OmpLoopInfo, RoiInfo
from repro.ir.values import Const, FunctionRef, GlobalRef, Value

_CMP_BY_PUNCT = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_ARITH_BY_PUNCT = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "shr",
}


def lower_program(sema: SemaResult, module_name: str = "module") -> Module:
    """Lower a semantically-checked program into an IR module."""
    return _ModuleLowerer(sema, module_name).run()


class _LoopFrame:
    def __init__(self, break_target: Block, continue_target: Block, roi_depth: int):
        self.break_target = break_target
        self.continue_target = continue_target
        self.roi_depth = roi_depth


class _ModuleLowerer:
    def __init__(self, sema: SemaResult, module_name: str) -> None:
        self._sema = sema
        self._module = Module(module_name)
        self._string_counter = itertools.count()
        self._string_uids = itertools.count(1_000_000)

    def run(self) -> Module:
        for name, symbol in self._sema.globals.items():
            var = VarInfo(symbol.uid, name, "global", symbol.ctype,
                          SourceLoc.of(symbol.pos) if symbol.pos else None)
            init = None
            gdecl = next(g for g in self._sema.program.globals if g.name == name)
            if gdecl.init is not None:
                if isinstance(gdecl.init, ast.IntLit):
                    init = gdecl.init.value
                elif isinstance(gdecl.init, ast.FloatLit):
                    init = gdecl.init.value
                elif isinstance(gdecl.init, ast.NullLit):
                    init = 0
            self._module.globals[name] = GlobalVariable(name, symbol.ctype, var, init)
        for fname, info in self._sema.functions.items():
            if info.definition.body is None:
                continue
            ftype = info.symbol.ctype
            assert isinstance(ftype, ct.FunctionType)
            function = Function(fname, ftype)
            self._module.add_function(function)
            _FunctionLowerer(self, function, info).run()
        return self._module

    @property
    def module(self) -> Module:
        return self._module

    def intern_string(self, text: str) -> GlobalRef:
        name = f".str{next(self._string_counter)}"
        arr_type = ct.ArrayType(ct.CHAR, len(text) + 1)
        var = VarInfo(next(self._string_uids), name, "global", arr_type)
        self._module.globals[name] = GlobalVariable(name, arr_type, var, text)
        return GlobalRef(name, ct.PointerType(arr_type))


class _FunctionLowerer:
    """Lowers one function body."""

    def __init__(self, parent: _ModuleLowerer, function: Function, info) -> None:
        self._parent = parent
        self._module = parent.module
        self._fn = function
        self._info = info
        self._block: Block = function.new_block("entry")
        self._addr_of_uid: Dict[int, Value] = {}
        self._loop_stack: List[_LoopFrame] = []
        self._roi_stack: List[RoiInfo] = []

    # -- low-level emission helpers ---------------------------------------

    def _emit(self, instr: Instr) -> Instr:
        if self._block.is_terminated:
            # Dead code after return/break: park it in a fresh unreachable
            # block so lowering stays simple; it is pruned afterwards.
            self._block = self._fn.new_block("dead")
        self._block.append(instr)
        return instr

    def _temp(self, ty: ct.Type) -> Temp:
        return Temp(self._fn.new_temp_name(), ty)

    def _switch_to(self, block: Block) -> None:
        self._block = block

    def _jump(self, target: Block, loc: Optional[SourceLoc] = None) -> None:
        if not self._block.is_terminated:
            self._block.append(Jump(target, loc))

    def _branch(self, cond: Value, if_true: Block, if_false: Block,
                loc: Optional[SourceLoc] = None) -> None:
        if not self._block.is_terminated:
            self._block.append(Branch(cond, if_true, if_false, loc))

    def _loc(self, node: ast.Node) -> SourceLoc:
        return SourceLoc.of(node.pos)

    # -- run ----------------------------------------------------------------

    def run(self) -> None:
        defn = self._info.definition
        slots = []
        for param in defn.params:
            symbol: Symbol = getattr(param, "symbol")
            var = VarInfo(symbol.uid, symbol.name, "param", symbol.ctype,
                          self._loc(param))
            self._fn.param_vars.append(var)
            slot = self._temp(ct.PointerType(symbol.ctype))
            alloca = Alloca(slot, symbol.ctype, var, self._loc(param))
            self._emit(alloca)
            self._fn.var_allocas[symbol.uid] = alloca
            self._addr_of_uid[symbol.uid] = slot
            slots.append((slot, var, param))
        for index, (slot, var, param) in enumerate(slots):
            incoming = Temp(f"arg{index}", var.ty)
            self._emit(Store(incoming, slot, var, self._loc(param)))
        assert defn.body is not None
        self._lower_block(defn.body)
        if not self._block.is_terminated:
            default: Optional[Value] = None
            if not isinstance(defn.return_type, ct.VoidType):
                default = Const(0, ct.INT)
                if isinstance(defn.return_type, ct.FloatType):
                    default = Const(0.0, ct.FLOAT)
            self._emit(Ret(default, self._loc(defn)))
        self._fn.remove_unreachable_blocks()

    # -- statements ----------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        carmot = [p for p in stmt.pragmas if isinstance(p, CarmotRoi)]
        omp = [p for p in stmt.pragmas if isinstance(p, OmpPragma)]
        if carmot:
            self._lower_roi_stmt(stmt, carmot[0], omp)
            return
        if omp:
            self._lower_omp_stmt(stmt, omp)
            return
        self._lower_plain_stmt(stmt)

    def _lower_plain_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self._lower_var_decl(decl)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._lower_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._lower_continue(stmt)
        else:
            raise LoweringError(f"unhandled statement {type(stmt).__name__}")

    def _lower_var_decl(self, stmt: ast.VarDecl) -> None:
        symbol: Symbol = getattr(stmt, "symbol")
        var = VarInfo(symbol.uid, symbol.name, "local", symbol.ctype, self._loc(stmt))
        slot = self._temp(ct.PointerType(symbol.ctype))
        alloca = Alloca(slot, symbol.ctype, var, self._loc(stmt))
        # All allocas live in the entry block, after existing allocas, so
        # that one stack frame layout covers the whole function.
        entry = self._fn.entry
        index = 0
        while index < len(entry.instrs) and isinstance(entry.instrs[index], Alloca):
            index += 1
        entry.instrs.insert(index, alloca)
        self._fn.var_allocas[symbol.uid] = alloca
        self._addr_of_uid[symbol.uid] = slot
        if stmt.init is not None:
            value = self._lower_expr(stmt.init)
            value = self._coerce(value, symbol.ctype, self._loc(stmt))
            self._emit(Store(value, slot, var, self._loc(stmt)))

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._lower_expr(stmt.cond)
        then_block = self._fn.new_block("then")
        join_block = self._fn.new_block("join")
        else_block = self._fn.new_block("else") if stmt.otherwise else join_block
        self._branch(cond, then_block, else_block, self._loc(stmt))
        self._switch_to(then_block)
        self._lower_stmt(stmt.then)
        self._jump(join_block)
        if stmt.otherwise is not None:
            self._switch_to(else_block)
            self._lower_stmt(stmt.otherwise)
            self._jump(join_block)
        self._switch_to(join_block)

    def _lower_while(self, stmt: ast.While, roi: Optional[RoiInfo] = None) -> None:
        if roi is None:
            roi = self._detect_body_roi(stmt.body, None, self._loc(stmt))
        head = self._fn.new_block("while.head")
        body = self._fn.new_block("while.body")
        exit_block = self._fn.new_block("while.exit")
        self._jump(head)
        self._switch_to(head)
        cond = self._lower_expr(stmt.cond)
        self._branch(cond, body, exit_block, self._loc(stmt))
        self._switch_to(body)
        self._lower_loop_body(stmt.body, head, exit_block, roi, self._loc(stmt))
        self._jump(head)
        self._switch_to(exit_block)

    def _lower_do_while(self, stmt: ast.DoWhile, roi: Optional[RoiInfo] = None) -> None:
        if roi is None:
            roi = self._detect_body_roi(stmt.body, None, self._loc(stmt))
        body = self._fn.new_block("do.body")
        cond_block = self._fn.new_block("do.cond")
        exit_block = self._fn.new_block("do.exit")
        self._jump(body)
        self._switch_to(body)
        self._lower_loop_body(stmt.body, cond_block, exit_block, roi, self._loc(stmt))
        self._jump(cond_block)
        self._switch_to(cond_block)
        cond = self._lower_expr(stmt.cond)
        self._branch(cond, body, exit_block, self._loc(stmt))
        self._switch_to(exit_block)

    def _lower_for(self, stmt: ast.For, roi: Optional[RoiInfo] = None) -> None:
        if stmt.init is not None:
            self._lower_plain_stmt(stmt.init)
        if roi is None:
            roi = self._detect_body_roi(stmt.body,
                                        self._for_induction_var(stmt),
                                        self._loc(stmt))
        head = self._fn.new_block("for.head")
        body = self._fn.new_block("for.body")
        step_block = self._fn.new_block("for.step")
        exit_block = self._fn.new_block("for.exit")
        self._jump(head)
        self._switch_to(head)
        if stmt.cond is not None:
            cond = self._lower_expr(stmt.cond)
            self._branch(cond, body, exit_block, self._loc(stmt))
        else:
            self._jump(body)
        self._switch_to(body)
        ind = self._for_induction_var(stmt)
        self._lower_loop_body(stmt.body, step_block, exit_block, roi,
                              self._loc(stmt), ind)
        self._jump(step_block)
        self._switch_to(step_block)
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        self._jump(head)
        self._switch_to(exit_block)

    def _lower_loop_body(
        self,
        body: ast.Stmt,
        continue_target: Block,
        break_target: Block,
        roi: Optional[RoiInfo],
        loc: SourceLoc,
        induction_var: Optional[VarInfo] = None,
    ) -> None:
        frame = _LoopFrame(break_target, continue_target, len(self._roi_stack))
        self._loop_stack.append(frame)
        if roi is not None:
            self._emit(RoiBegin(roi.roi_id, loc))
            self._roi_stack.append(roi)
        self._lower_stmt(body)
        if roi is not None:
            self._emit(RoiEnd(roi.roi_id, loc))
            self._roi_stack.pop()
        self._loop_stack.pop()

    def _end_rois_down_to(self, depth: int, loc: SourceLoc) -> None:
        for roi in reversed(self._roi_stack[depth:]):
            self._emit(RoiEnd(roi.roi_id, loc))

    def _lower_return(self, stmt: ast.Return) -> None:
        value: Optional[Value] = None
        if stmt.value is not None:
            value = self._lower_expr(stmt.value)
            value = self._coerce(value, self._info.definition.return_type,
                                 self._loc(stmt))
        self._end_rois_down_to(0, self._loc(stmt))
        self._emit(Ret(value, self._loc(stmt)))

    def _lower_break(self, stmt: ast.Break) -> None:
        frame = self._loop_stack[-1]
        self._end_rois_down_to(frame.roi_depth, self._loc(stmt))
        self._emit(Jump(frame.break_target, self._loc(stmt)))

    def _lower_continue(self, stmt: ast.Continue) -> None:
        frame = self._loop_stack[-1]
        self._end_rois_down_to(frame.roi_depth, self._loc(stmt))
        self._emit(Jump(frame.continue_target, self._loc(stmt)))

    # -- pragma-wrapped statements --------------------------------------------

    def _lower_roi_stmt(self, stmt: ast.Stmt, pragma: CarmotRoi,
                        omp: List[OmpPragma]) -> None:
        roi = self._module.new_roi(
            pragma.name or "", pragma.abstraction, self._fn.name, stmt.pos
        )
        roi.original_omp = list(omp)
        if isinstance(stmt, (ast.For, ast.While, ast.DoWhile)):
            roi.is_loop_body = True
            if isinstance(stmt, ast.For):
                roi.induction_var = self._for_induction_var(stmt)
            self._register_omp_loops(omp, stmt, roi)
            # Each entry of the loop starts a fresh PSEC epoch (§4.2).
            self._emit(RoiReset(roi.roi_id, self._loc(stmt)))
            if isinstance(stmt, ast.For):
                self._lower_for(stmt, roi)
            elif isinstance(stmt, ast.While):
                self._lower_while(stmt, roi)
            else:
                self._lower_do_while(stmt, roi)
            return
        self._register_omp_loops(omp, stmt, roi)
        self._emit(RoiBegin(roi.roi_id, self._loc(stmt)))
        self._roi_stack.append(roi)
        self._lower_plain_stmt(stmt)
        self._roi_stack.pop()
        self._emit(RoiEnd(roi.roi_id, self._loc(stmt)))

    def _detect_body_roi(self, body: ast.Stmt,
                         induction: Optional[VarInfo],
                         loc: SourceLoc) -> Optional[RoiInfo]:
        """Recognise the Figure 1 shape: a ``carmot roi`` pragma on the loop
        body (or on its sole inner statement) makes each iteration one
        dynamic invocation.  Emits the epoch reset in the preheader and
        strips the pragma so body lowering proceeds plainly."""
        inner: ast.Stmt = body
        while True:
            if isinstance(inner, (ast.For, ast.While, ast.DoWhile)):
                # A pragma'd loop statement is its *own* ROI (each of its
                # iterations is an invocation), not this loop's body-ROI.
                return None
            carmot = [p for p in inner.pragmas if isinstance(p, CarmotRoi)]
            if carmot:
                pragma = carmot[0]
                roi = self._module.new_roi(
                    pragma.name or "", pragma.abstraction, self._fn.name,
                    inner.pos,
                )
                omp = [p for p in inner.pragmas if isinstance(p, OmpPragma)]
                roi.original_omp = list(omp)
                roi.is_loop_body = True
                roi.induction_var = induction
                self._register_omp_loops(omp, inner, roi)
                inner.pragmas = [
                    p for p in inner.pragmas
                    if not isinstance(p, CarmotRoi)
                    and not (isinstance(p, OmpPragma)
                             and p.directive in ("parallel for", "parallel"))
                ]
                self._emit(RoiReset(roi.roi_id, loc))
                return roi
            if isinstance(inner, ast.Block) and len(inner.stmts) == 1:
                inner = inner.stmts[0]
                continue
            return None

    def _register_omp_loops(self, omp: List[OmpPragma], stmt: ast.Stmt,
                            roi: Optional[RoiInfo]) -> None:
        for pragma in omp:
            if pragma.directive in ("parallel for", "parallel"):
                self._module.omp_loops.append(
                    OmpLoopInfo(pragma, self._fn.name, self._loc(stmt),
                                roi.roi_id if roi else None)
                )

    def _for_induction_var(self, stmt: ast.For) -> Optional[VarInfo]:
        """Recognise the loop-governing induction variable of a simple for."""
        symbol: Optional[Symbol] = None
        if isinstance(stmt.init, ast.VarDecl):
            symbol = getattr(stmt.init, "symbol", None)
        elif isinstance(stmt.init, ast.ExprStmt) and isinstance(
            stmt.init.expr, ast.Assign
        ):
            target = stmt.init.expr.target
            if isinstance(target, ast.VarRef):
                symbol = getattr(target, "symbol", None)
        if symbol is None:
            return None
        step = stmt.step
        names_in_step: List[str] = []
        if isinstance(step, ast.IncDec) and isinstance(step.target, ast.VarRef):
            names_in_step.append(step.target.name)
        elif isinstance(step, ast.Assign) and isinstance(step.target, ast.VarRef):
            names_in_step.append(step.target.name)
        if symbol.name not in names_in_step:
            return None
        storage = "local" if symbol.kind is SymbolKind.LOCAL else "param"
        return VarInfo(symbol.uid, symbol.name, storage, symbol.ctype)

    def _lower_omp_stmt(self, stmt: ast.Stmt, omp: List[OmpPragma]) -> None:
        pragma = omp[0]
        directive = pragma.directive
        if directive in ("parallel for", "parallel"):
            # Original parallel loop without a carmot ROI on it: record the
            # site; the loop itself lowers normally.
            self._register_omp_loops(omp, stmt, None)
            self._lower_plain_stmt(stmt)
            return
        if directive == "barrier":
            self._emit(OmpBarrier(self._loc(stmt)))
            self._lower_plain_stmt(stmt)
            return
        if directive in ("critical", "ordered", "task", "section", "master",
                         "parallel sections"):
            kind = directive.replace(" ", "_")
            region = self._module.new_omp_region(kind, pragma, self._fn.name,
                                                 stmt.pos)
            self._emit(OmpRegionBegin(kind, region.region_id, self._loc(stmt)))
            self._lower_plain_stmt(stmt)
            self._emit(OmpRegionEnd(kind, region.region_id, self._loc(stmt)))
            return
        raise LoweringError(f"unsupported omp directive {directive!r}")

    # -- expressions: addresses --------------------------------------------------

    def _lower_address(self, expr: ast.Expr) -> Tuple[Value, Optional[VarInfo]]:
        """Lower an lvalue expression to (address value, source var if any)."""
        if isinstance(expr, ast.VarRef):
            symbol: Symbol = getattr(expr, "symbol")
            if symbol.kind in (SymbolKind.FUNCTION, SymbolKind.BUILTIN):
                raise LoweringError(f"cannot take function {symbol.name} as lvalue")
            if symbol.kind is SymbolKind.GLOBAL:
                gvar = self._module.globals[symbol.name]
                return GlobalRef(symbol.name, ct.PointerType(symbol.ctype)), gvar.var
            addr = self._addr_of_uid[symbol.uid]
            alloca = self._fn.var_allocas[symbol.uid]
            return addr, alloca.var
        if isinstance(expr, ast.Deref):
            return self._lower_expr(expr.operand), None
        if isinstance(expr, ast.Index):
            base_type = ct.decay(expr.base.ctype)
            assert isinstance(base_type, ct.PointerType)
            elem = base_type.pointee
            base = self._lower_expr(expr.base)
            index = self._lower_expr(expr.index)
            result = self._temp(ct.PointerType(elem))
            self._emit(AddrOffset(result, base, index, elem.size(), 0,
                                  self._loc(expr)))
            return result, None
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = self._lower_expr(expr.base)
                base_type = ct.decay(expr.base.ctype)
                assert isinstance(base_type, ct.PointerType)
                struct = base_type.pointee
            else:
                base, _ = self._lower_address(expr.base)
                struct = expr.base.ctype
            assert isinstance(struct, ct.StructType)
            offset = struct.field_offset(expr.name)
            ftype = struct.field_type(expr.name)
            result = self._temp(ct.PointerType(ftype))
            self._emit(AddrOffset(result, base, Const(0, ct.INT), 0, offset,
                                  self._loc(expr)))
            return result, None
        raise LoweringError(f"expression is not an lvalue: {type(expr).__name__}")

    # -- expressions: values --------------------------------------------------------

    def _coerce(self, value: Value, to_type: ct.Type,
                loc: Optional[SourceLoc]) -> Value:
        to_type = ct.decay(to_type)
        from_type = value.ty
        if from_type == to_type:
            return value
        if ct.is_integer(from_type) and ct.is_integer(to_type):
            return value
        result = self._temp(to_type)
        self._emit(Cast(result, value, loc))
        return result

    def _lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLit):
            return Const(expr.value, ct.INT)
        if isinstance(expr, ast.FloatLit):
            return Const(expr.value, ct.FLOAT)
        if isinstance(expr, ast.NullLit):
            return Const(0, ct.PointerType(ct.CHAR))
        if isinstance(expr, ast.StringLit):
            ref = self._parent.intern_string(expr.value)
            result = self._temp(ct.PointerType(ct.CHAR))
            self._emit(AddrOffset(result, ref, Const(0, ct.INT), 0, 0,
                                  self._loc(expr)))
            return result
        if isinstance(expr, ast.VarRef):
            return self._lower_var_ref(expr)
        if isinstance(expr, ast.BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self._lower_incdec(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, (ast.Index, ast.Member, ast.Deref)):
            return self._lower_load_of(expr)
        if isinstance(expr, ast.AddressOf):
            operand = expr.operand
            if isinstance(operand, ast.VarRef):
                symbol: Symbol = getattr(operand, "symbol")
                if symbol.kind in (SymbolKind.FUNCTION, SymbolKind.BUILTIN):
                    return FunctionRef(symbol.name, symbol.ctype,
                                       symbol.kind is SymbolKind.BUILTIN)
            addr, _ = self._lower_address(operand)
            return addr
        if isinstance(expr, ast.SizeOf):
            target = expr.target
            size = target.size() if isinstance(target, ct.Type) else (
                target.ctype.size() if target.ctype else 8
            )
            return Const(size, ct.INT)
        if isinstance(expr, ast.Cast):
            value = self._lower_expr(expr.operand)
            return self._coerce(value, expr.to_type, self._loc(expr))
        if isinstance(expr, ast.Cond):
            return self._lower_ternary(expr)
        raise LoweringError(f"unhandled expression {type(expr).__name__}")

    def _lower_var_ref(self, expr: ast.VarRef) -> Value:
        symbol: Symbol = getattr(expr, "symbol")
        if symbol.kind in (SymbolKind.FUNCTION, SymbolKind.BUILTIN):
            return FunctionRef(symbol.name, symbol.ctype,
                               symbol.kind is SymbolKind.BUILTIN)
        addr, var = self._lower_address(expr)
        if isinstance(symbol.ctype, ct.ArrayType):
            # Array decays to a pointer to its first element.
            result = self._temp(ct.PointerType(symbol.ctype.element))
            self._emit(AddrOffset(result, addr, Const(0, ct.INT), 0, 0,
                                  self._loc(expr)))
            return result
        result = self._temp(symbol.ctype)
        self._emit(Load(result, addr, var, self._loc(expr)))
        return result

    def _lower_load_of(self, expr: ast.Expr) -> Value:
        addr, var = self._lower_address(expr)
        assert expr.ctype is not None
        if isinstance(expr.ctype, ct.ArrayType):
            result = self._temp(ct.PointerType(expr.ctype.element))
            self._emit(AddrOffset(result, addr, Const(0, ct.INT), 0, 0,
                                  self._loc(expr)))
            return result
        if isinstance(expr.ctype, ct.StructType):
            # Struct rvalues only appear as sources of member chains /
            # assignment of whole structs is not supported in MiniC.
            return addr
        result = self._temp(expr.ctype)
        self._emit(Load(result, addr, var, self._loc(expr)))
        return result

    def _lower_binop(self, expr: ast.BinOp) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        loc = self._loc(expr)
        lt, rt = ct.decay(expr.lhs.ctype), ct.decay(expr.rhs.ctype)
        if op in _CMP_BY_PUNCT:
            if isinstance(lt, ct.FloatType) or isinstance(rt, ct.FloatType):
                lhs = self._coerce(lhs, ct.FLOAT, loc)
                rhs = self._coerce(rhs, ct.FLOAT, loc)
            result = self._temp(ct.INT)
            self._emit(BinOp(result, _CMP_BY_PUNCT[op], lhs, rhs, loc))
            return result
        # Pointer arithmetic.
        if isinstance(lt, ct.PointerType) and op in ("+", "-") and ct.is_integer(rt):
            index = rhs
            if op == "-":
                neg = self._temp(ct.INT)
                self._emit(BinOp(neg, "sub", Const(0, ct.INT), rhs, loc))
                index = neg
            result = self._temp(lt)
            self._emit(AddrOffset(result, lhs, index, lt.pointee.size(), 0, loc))
            return result
        if op == "+" and ct.is_integer(lt) and isinstance(rt, ct.PointerType):
            result = self._temp(rt)
            self._emit(AddrOffset(result, rhs, lhs, rt.pointee.size(), 0, loc))
            return result
        if op == "-" and isinstance(lt, ct.PointerType) and isinstance(rt, ct.PointerType):
            diff = self._temp(ct.INT)
            self._emit(BinOp(diff, "sub", lhs, rhs, loc))
            result = self._temp(ct.INT)
            self._emit(BinOp(result, "div", diff, Const(lt.pointee.size(), ct.INT),
                             loc))
            return result
        # Plain arithmetic with promotion.
        common = ct.common_arithmetic_type(lt, rt)
        lhs = self._coerce(lhs, common, loc)
        rhs = self._coerce(rhs, common, loc)
        result = self._temp(common)
        self._emit(BinOp(result, _ARITH_BY_PUNCT[op], lhs, rhs, loc))
        return result

    def _lower_short_circuit(self, expr: ast.BinOp) -> Value:
        loc = self._loc(expr)
        slot = self._temp(ct.PointerType(ct.INT))
        # Compiler temp, not a source PSE (var=None): instrumentation skips it.
        alloca = Alloca(slot, ct.INT, None, loc)
        entry = self._fn.entry
        index = 0
        while index < len(entry.instrs) and isinstance(entry.instrs[index], Alloca):
            index += 1
        entry.instrs.insert(index, alloca)
        rhs_block = self._fn.new_block("sc.rhs")
        done = self._fn.new_block("sc.done")
        short_block = self._fn.new_block("sc.short")
        lhs = self._lower_expr(expr.lhs)
        if expr.op == "&&":
            self._branch(lhs, rhs_block, short_block, loc)
            short_value = Const(0, ct.INT)
        else:
            self._branch(lhs, short_block, rhs_block, loc)
            short_value = Const(1, ct.INT)
        self._switch_to(short_block)
        self._emit(Store(short_value, slot, None, loc))
        self._jump(done)
        self._switch_to(rhs_block)
        rhs = self._lower_expr(expr.rhs)
        bool_rhs = self._temp(ct.INT)
        zero: Value = Const(0, ct.INT)
        if isinstance(ct.decay(expr.rhs.ctype), ct.FloatType):
            zero = Const(0.0, ct.FLOAT)
        self._emit(BinOp(bool_rhs, "ne", rhs, zero, loc))
        self._emit(Store(bool_rhs, slot, None, loc))
        self._jump(done)
        self._switch_to(done)
        result = self._temp(ct.INT)
        self._emit(Load(result, slot, None, loc))
        return result

    def _lower_ternary(self, expr: ast.Cond) -> Value:
        loc = self._loc(expr)
        assert expr.ctype is not None
        result_type = ct.decay(expr.ctype)
        slot = self._temp(ct.PointerType(result_type))
        alloca = Alloca(slot, result_type, None, loc)
        entry = self._fn.entry
        index = 0
        while index < len(entry.instrs) and isinstance(entry.instrs[index], Alloca):
            index += 1
        entry.instrs.insert(index, alloca)
        then_block = self._fn.new_block("sel.then")
        else_block = self._fn.new_block("sel.else")
        done = self._fn.new_block("sel.done")
        cond = self._lower_expr(expr.cond)
        self._branch(cond, then_block, else_block, loc)
        self._switch_to(then_block)
        value = self._coerce(self._lower_expr(expr.then), result_type, loc)
        self._emit(Store(value, slot, None, loc))
        self._jump(done)
        self._switch_to(else_block)
        value = self._coerce(self._lower_expr(expr.otherwise), result_type, loc)
        self._emit(Store(value, slot, None, loc))
        self._jump(done)
        self._switch_to(done)
        result = self._temp(result_type)
        self._emit(Load(result, slot, None, loc))
        return result

    def _lower_unary(self, expr: ast.UnaryOp) -> Value:
        operand = self._lower_expr(expr.operand)
        loc = self._loc(expr)
        ty = ct.decay(expr.operand.ctype)
        if expr.op == "+":
            return operand
        if expr.op == "-":
            zero: Value = Const(0.0, ct.FLOAT) if isinstance(ty, ct.FloatType) \
                else Const(0, ct.INT)
            result = self._temp(ty if ct.is_arithmetic(ty) else ct.INT)
            self._emit(BinOp(result, "sub", zero, operand, loc))
            return result
        if expr.op == "!":
            zero = Const(0.0, ct.FLOAT) if isinstance(ty, ct.FloatType) \
                else Const(0, ct.INT)
            result = self._temp(ct.INT)
            self._emit(BinOp(result, "eq", operand, zero, loc))
            return result
        if expr.op == "~":
            result = self._temp(ct.INT)
            self._emit(BinOp(result, "xor", operand, Const(-1, ct.INT), loc))
            return result
        raise LoweringError(f"unhandled unary operator {expr.op!r}")

    def _lower_assign(self, expr: ast.Assign) -> Value:
        loc = self._loc(expr)
        addr, var = self._lower_address(expr.target)
        target_type = ct.decay(expr.target.ctype)
        if expr.op == "=":
            value = self._lower_expr(expr.value)
            value = self._coerce(value, target_type, loc)
            self._emit(Store(value, addr, var, loc))
            return value
        op = expr.op[:-1]
        old = self._temp(target_type)
        self._emit(Load(old, addr, var, loc))
        rhs = self._lower_expr(expr.value)
        if isinstance(target_type, ct.PointerType):
            index = rhs
            if op == "-":
                neg = self._temp(ct.INT)
                self._emit(BinOp(neg, "sub", Const(0, ct.INT), rhs, loc))
                index = neg
            new = self._temp(target_type)
            self._emit(AddrOffset(new, old, index, target_type.pointee.size(), 0,
                                  loc))
        else:
            value_type = ct.decay(expr.value.ctype)
            common = ct.common_arithmetic_type(target_type, value_type)
            lhs_v = self._coerce(old, common, loc)
            rhs_v = self._coerce(rhs, common, loc)
            tmp = self._temp(common)
            self._emit(BinOp(tmp, _ARITH_BY_PUNCT[op], lhs_v, rhs_v, loc))
            new = self._coerce(tmp, target_type, loc)
        self._emit(Store(new, addr, var, loc))
        return new

    def _lower_incdec(self, expr: ast.IncDec) -> Value:
        loc = self._loc(expr)
        addr, var = self._lower_address(expr.target)
        ty = ct.decay(expr.target.ctype)
        old = self._temp(ty)
        self._emit(Load(old, addr, var, loc))
        if isinstance(ty, ct.PointerType):
            delta = 1 if expr.op == "++" else -1
            new = self._temp(ty)
            self._emit(AddrOffset(new, old, Const(delta, ct.INT),
                                  ty.pointee.size(), 0, loc))
        else:
            one: Value = Const(1.0, ct.FLOAT) if isinstance(ty, ct.FloatType) \
                else Const(1, ct.INT)
            new = self._temp(ty)
            opname = "add" if expr.op == "++" else "sub"
            self._emit(BinOp(new, opname, old, one, loc))
        self._emit(Store(new, addr, var, loc))
        return new if expr.is_prefix else old

    def _lower_call(self, expr: ast.Call) -> Value:
        loc = self._loc(expr)
        callee_expr = expr.callee
        callee: Value
        ftype: Optional[ct.FunctionType] = None
        if isinstance(callee_expr, ast.VarRef):
            symbol: Symbol = getattr(callee_expr, "symbol")
            if symbol.kind in (SymbolKind.FUNCTION, SymbolKind.BUILTIN):
                assert isinstance(symbol.ctype, ct.FunctionType)
                ftype = symbol.ctype
                callee = FunctionRef(symbol.name, ftype,
                                     symbol.kind is SymbolKind.BUILTIN)
            else:
                callee = self._lower_expr(callee_expr)
        else:
            callee = self._lower_expr(callee_expr)
        if ftype is None:
            decayed = ct.decay(callee_expr.ctype)
            if isinstance(decayed, ct.PointerType) and isinstance(
                decayed.pointee, ct.FunctionType
            ):
                ftype = decayed.pointee
            elif isinstance(decayed, ct.FunctionType):
                ftype = decayed
            else:
                raise LoweringError("call through non-function value")
        args: List[Value] = []
        for arg, pty in zip(expr.args, ftype.param_types):
            value = self._lower_expr(arg)
            args.append(self._coerce(value, pty, loc))
        result: Optional[Temp] = None
        if not isinstance(ftype.return_type, ct.VoidType):
            result = self._temp(ftype.return_type)
        self._emit(Call(result, callee, args, loc))
        if result is None:
            return Const(0, ct.INT)
        return result
