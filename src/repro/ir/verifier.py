"""IR verifier: structural invariants the rest of the toolchain relies on."""

from __future__ import annotations

from typing import Set

from repro.errors import IRVerifyError
from repro.ir.instructions import (
    Alloca,
    Branch,
    Instr,
    Jump,
    RoiBegin,
    RoiEnd,
    Temp,
)
from repro.ir.module import Block, Function, Module
from repro.ir.values import Const, FunctionRef, GlobalRef, Value


def verify_module(module: Module) -> None:
    """Raise :class:`IRVerifyError` if the module violates an invariant."""
    for function in module.functions.values():
        _verify_function(module, function)


def _verify_function(module: Module, function: Function) -> None:
    if not function.blocks:
        raise IRVerifyError(f"{function.name}: function has no blocks")
    block_set = set(function.blocks)
    defined: Set[str] = {f"arg{i}" for i in range(len(function.param_vars))}
    for block in function.blocks:
        if block.terminator is None:
            raise IRVerifyError(f"{function.name}/{block.label}: not terminated")
        for index, instr in enumerate(block.instrs):
            if instr.is_terminator and index != len(block.instrs) - 1:
                raise IRVerifyError(
                    f"{function.name}/{block.label}: terminator not last"
                )
            result = instr.result
            if isinstance(result, Temp):
                if result.name in defined:
                    raise IRVerifyError(
                        f"{function.name}: temp %{result.name} defined twice"
                    )
                defined.add(result.name)
        for succ in block.successors():
            if succ not in block_set:
                raise IRVerifyError(
                    f"{function.name}/{block.label}: branch to foreign block"
                )
    _verify_operands(module, function, defined)
    _verify_roi_markers(module, function)


def _verify_operands(module: Module, function: Function, defined: Set[str]) -> None:
    for instr in function.instructions():
        for op in instr.operands():
            _verify_value(module, function, op, defined)


def _verify_value(module: Module, function: Function, value: Value,
                  defined: Set[str]) -> None:
    if isinstance(value, Const):
        return
    if isinstance(value, Temp):
        if value.name not in defined:
            raise IRVerifyError(f"{function.name}: use of undefined %{value.name}")
        return
    if isinstance(value, GlobalRef):
        if value.name not in module.globals:
            raise IRVerifyError(f"{function.name}: unknown global @{value.name}")
        return
    if isinstance(value, FunctionRef):
        if not value.is_builtin and value.name not in module.functions:
            raise IRVerifyError(
                f"{function.name}: reference to unknown function @{value.name}"
            )
        return
    raise IRVerifyError(f"{function.name}: unknown operand kind {value!r}")


def _verify_roi_markers(module: Module, function: Function) -> None:
    for instr in function.instructions():
        if isinstance(instr, (RoiBegin, RoiEnd)):
            if instr.roi_id not in module.rois:
                raise IRVerifyError(
                    f"{function.name}: marker references unknown ROI "
                    f"#{instr.roi_id}"
                )
