"""IR containers: basic blocks, functions, modules, and the ROI table."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.lang import types as ct
from repro.lang.tokens import SourcePos
from repro.ir.instructions import (
    Alloca,
    Branch,
    Instr,
    Jump,
    Ret,
    SourceLoc,
    VarInfo,
)


class Block:
    """A basic block: a label, a list of instructions, one terminator."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.instrs: List[Instr] = []
        self.parent: Optional["Function"] = None

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["Block"]:
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]  # type: ignore[list-item]
        if isinstance(term, Branch):
            if term.if_true is term.if_false:
                return [term.if_true]  # type: ignore[list-item]
            return [term.if_true, term.if_false]  # type: ignore[list-item]
        return []

    def append(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {instr}" for instr in self.instrs)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Block {self.label}>"


class Function:
    """An IR function.

    ``param_vars`` holds the VarInfo of each parameter (in order) and
    ``var_allocas`` maps variable uid -> its Alloca instruction: this is the
    source-to-IR variable mapping PSEC depends on.
    """

    def __init__(self, name: str, ftype: ct.FunctionType) -> None:
        self.name = name
        self.type = ftype
        self.blocks: List[Block] = []
        self.param_vars: List[VarInfo] = []
        self.var_allocas: Dict[int, Alloca] = {}
        self._label_counter = itertools.count()
        self._temp_counter = itertools.count()
        #: Set by the call-graph optimization (§4.4.5) when this function can
        #: never be live on the callstack at an ROI start and was therefore
        #: optimized conventionally (-O3 analogue) and left uninstrumented.
        self.conventionally_optimized = False

    @property
    def entry(self) -> Block:
        return self.blocks[0]

    def new_block(self, hint: str = "bb") -> Block:
        block = Block(f"{hint}{next(self._label_counter)}")
        block.parent = self
        self.blocks.append(block)
        return block

    def new_temp_name(self) -> str:
        return f"t{next(self._temp_counter)}"

    def predecessors(self) -> Dict[Block, List[Block]]:
        preds: Dict[Block, List[Block]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def instructions(self) -> Iterator[Instr]:
        for block in self.blocks:
            yield from block.instrs

    def instruction_count(self) -> int:
        return sum(len(block.instrs) for block in self.blocks)

    def remove_unreachable_blocks(self) -> None:
        reachable = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block in reachable:
                continue
            reachable.add(block)
            stack.extend(block.successors())
        self.blocks = [b for b in self.blocks if b in reachable]

    def __str__(self) -> str:
        params = ", ".join(str(v) for v in self.param_vars)
        head = f"func {self.name}({params}) -> {self.type.return_type} {{"
        body = "\n".join(str(b) for b in self.blocks)
        return f"{head}\n{body}\n}}"


@dataclass(frozen=True)
class IrStats:
    """Module size counters; deltas of these summarize what a pass did."""

    functions: int
    blocks: int
    instructions: int


@dataclass
class GlobalVariable:
    name: str
    ty: ct.Type
    var: VarInfo
    init: Optional[object] = None  # int/float literal


@dataclass
class RoiInfo:
    """Static metadata about one Region Of Interest.

    ``is_loop_body`` is true when the ROI wraps the body of a loop (the
    common case for parallelization: each loop iteration is one dynamic
    invocation).  ``function`` is the enclosing function's name.
    """

    roi_id: int
    name: str
    abstraction: Optional[str]
    function: str
    loc: SourceLoc
    is_loop_body: bool = False
    #: For loop-body ROIs: VarInfo of the loop-governing induction variable,
    #: filled in by lowering when the loop has a recognisable `for` shape.
    induction_var: Optional[VarInfo] = None
    #: Original OpenMP pragmas attached to the same statement, if any (used
    #: by the Figure 6 harness to compare with generated pragmas).
    original_omp: List[object] = field(default_factory=list)


@dataclass
class OmpRegionInfo:
    """Static metadata about an original-OpenMP marker region."""

    region_id: int
    kind: str
    pragma: object  # repro.lang.pragmas.OmpPragma
    function: str
    loc: SourceLoc


@dataclass
class OmpLoopInfo:
    """An original ``#pragma omp parallel for`` site; ``roi_id`` links it to
    the CARMOT ROI wrapping the same loop body (when one exists)."""

    pragma: object
    function: str
    loc: SourceLoc
    roi_id: Optional[int] = None


class Module:
    """A compiled MiniC translation unit."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.rois: Dict[int, RoiInfo] = {}
        self.omp_regions: Dict[int, OmpRegionInfo] = {}
        self.omp_loops: List[OmpLoopInfo] = []
        self._roi_counter = itertools.count()
        self._region_counter = itertools.count()
        #: Dense call-site table, (var, loc) per site id, filled by the
        #: ``site-table`` analysis after instrumentation.  Probes carry the
        #: matching ``site_id``; the packed runtime encoding seeds its
        #: intern tables from this so the hot path never re-interns.
        self.site_table: List[tuple] = []
        #: Prescreen sidecar: the compile-time Set verdicts
        #: (:class:`repro.compiler.prescreen.StaticFacts`) indexed by the
        #: module's ``probe.static`` instructions; None when the
        #: prescreen pass did not run or proved nothing.  Serialized as
        #: its own session artifact, not as part of the IR payload.
        self.static_facts = None

    def new_omp_region(
        self, kind: str, pragma: object, function: str, pos: SourcePos
    ) -> OmpRegionInfo:
        region_id = next(self._region_counter)
        info = OmpRegionInfo(region_id, kind, pragma, function, SourceLoc.of(pos))
        self.omp_regions[region_id] = info
        return info

    def add_function(self, function: Function) -> Function:
        self.functions[function.name] = function
        return function

    def new_roi(
        self,
        name: str,
        abstraction: Optional[str],
        function: str,
        pos: SourcePos,
    ) -> RoiInfo:
        roi_id = next(self._roi_counter)
        info = RoiInfo(
            roi_id=roi_id,
            name=name or f"roi{roi_id}",
            abstraction=abstraction,
            function=function,
            loc=SourceLoc.of(pos),
        )
        self.rois[roi_id] = info
        return info

    def ir_stats(self) -> "IrStats":
        """Cheap size snapshot, used for per-pass IR-delta reporting."""
        return IrStats(
            functions=len(self.functions),
            blocks=sum(len(f.blocks) for f in self.functions.values()),
            instructions=sum(f.instruction_count()
                             for f in self.functions.values()),
        )

    def __str__(self) -> str:
        parts = [f"; module {self.name}"]
        for gvar in self.globals.values():
            init = f" = {gvar.init}" if gvar.init is not None else ""
            parts.append(f"global @{gvar.name} : {gvar.ty}{init}")
        parts.extend(str(f) for f in self.functions.values())
        return "\n\n".join(parts)
