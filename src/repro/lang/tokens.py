"""Token definitions for the MiniC front-end.

MiniC is the C-like source language this reproduction uses in place of
C/C++.  It is small but complete enough for PSEC: it has globals, locals,
pointers, fixed-size arrays, structs, heap allocation, function calls
(including calls through function pointers), loops, and ``#pragma``
directives for marking Regions Of Interest and for expressing the
"original" OpenMP parallelism of the benchmark ports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    STRING_LIT = "string_lit"
    CHAR_LIT = "char_lit"
    KEYWORD = "keyword"
    PUNCT = "punct"
    PRAGMA = "pragma"
    EOF = "eof"


#: Reserved words of MiniC.  ``NULL`` is lexed as a keyword so it cannot be
#: shadowed by a variable, mirroring how the benchmarks use it.
KEYWORDS = frozenset(
    {
        "int",
        "float",
        "void",
        "char",
        "struct",
        "typedef",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "sizeof",
        "NULL",
    }
)

#: Multi-character punctuators, longest first so the lexer can use a greedy
#: prefix match.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    "?",
    ":",
)


@dataclass(frozen=True)
class SourcePos:
    """A position in a MiniC source file (1-based line and column)."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the literal text for identifiers and punctuators, the
    decoded value for literals, and the raw directive body (text after
    ``#pragma``) for pragma tokens.
    """

    kind: TokenKind
    value: object
    pos: SourcePos

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.value == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == text

    def __str__(self) -> str:
        return f"{self.kind.value}({self.value!r})@{self.pos}"
