"""The MiniC type system.

These types are shared between the front-end (semantic analysis) and the IR
(instruction result types), which keeps the source-to-IR mapping that PSEC
relies on trivially reversible.  Layout matches a 64-bit target: ``int`` and
``float`` are 8 bytes, ``char`` is 1 byte, pointers are 8 bytes.  Struct
fields are laid out in declaration order with natural alignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SemanticError

POINTER_SIZE = 8


class Type:
    """Base class for MiniC types.  Types are compared structurally."""

    def size(self) -> int:
        raise NotImplementedError

    def alignment(self) -> int:
        return min(self.size(), POINTER_SIZE) or 1

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, (IntType, FloatType, CharType, PointerType))


@dataclass(frozen=True)
class VoidType(Type):
    def size(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    def size(self) -> int:
        return 8

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class CharType(Type):
    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "char"


@dataclass(frozen=True)
class FloatType(Type):
    def size(self) -> int:
        return 8

    def __str__(self) -> str:
        return "float"


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type

    def size(self) -> int:
        return POINTER_SIZE

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    count: int

    def size(self) -> int:
        return self.element.size() * self.count

    def alignment(self) -> int:
        return self.element.alignment()

    def __str__(self) -> str:
        return f"{self.element}[{self.count}]"


@dataclass
class StructType(Type):
    """A named struct.

    Structs are nominal: two structs with the same fields but different
    names are distinct.  Field layout is computed lazily once the body is
    attached (supporting self-referential structs via pointers).
    """

    name: str
    fields: List[Tuple[str, Type]] = field(default_factory=list)
    _layout: Optional[Dict[str, int]] = None
    _size: Optional[int] = None

    def set_body(self, fields: List[Tuple[str, Type]]) -> None:
        self.fields = list(fields)
        self._layout = None
        self._size = None

    def _compute_layout(self) -> None:
        offset = 0
        layout: Dict[str, int] = {}
        max_align = 1
        for fname, ftype in self.fields:
            align = ftype.alignment()
            max_align = max(max_align, align)
            offset = _align_up(offset, align)
            layout[fname] = offset
            offset += ftype.size()
        self._layout = layout
        self._size = _align_up(offset, max_align) if offset else 0

    def field_offset(self, name: str) -> int:
        if self._layout is None:
            self._compute_layout()
        assert self._layout is not None
        if name not in self._layout:
            raise SemanticError(f"struct {self.name} has no field {name!r}")
        return self._layout[name]

    def field_type(self, name: str) -> Type:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise SemanticError(f"struct {self.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(fname == name for fname, _ in self.fields)

    def size(self) -> int:
        if self._size is None:
            self._compute_layout()
        assert self._size is not None
        return self._size

    def alignment(self) -> int:
        if not self.fields:
            return 1
        return max(ftype.alignment() for _, ftype in self.fields)

    def __str__(self) -> str:
        return f"struct {self.name}"

    def __hash__(self) -> int:
        return hash(("struct", self.name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name


@dataclass(frozen=True)
class FunctionType(Type):
    return_type: Type
    param_types: Tuple[Type, ...]

    def size(self) -> int:
        return POINTER_SIZE

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        return f"{self.return_type}({params})"


INT = IntType()
CHAR = CharType()
FLOAT = FloatType()
VOID = VoidType()


def _align_up(value: int, align: int) -> int:
    if align <= 1:
        return value
    return (value + align - 1) // align * align


def is_integer(t: Type) -> bool:
    return isinstance(t, (IntType, CharType))


def is_arithmetic(t: Type) -> bool:
    return isinstance(t, (IntType, CharType, FloatType))


def decay(t: Type) -> Type:
    """Array-to-pointer decay, as in C expression contexts."""
    if isinstance(t, ArrayType):
        return PointerType(t.element)
    if isinstance(t, FunctionType):
        return PointerType(t)
    return t


def common_arithmetic_type(a: Type, b: Type) -> Type:
    """Usual arithmetic conversions for binary operators."""
    if not (is_arithmetic(a) and is_arithmetic(b)):
        raise SemanticError(f"no common arithmetic type for {a} and {b}")
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        return FLOAT
    return INT


def assignable(target: Type, value: Type) -> bool:
    """Whether ``value`` can be assigned to an lvalue of type ``target``."""
    target = decay(target)
    value = decay(value)
    if target == value:
        return True
    if is_arithmetic(target) and is_arithmetic(value):
        return True
    if isinstance(target, PointerType) and isinstance(value, PointerType):
        # Permit void*-style mixing through char* and exact match otherwise.
        return True
    if isinstance(target, PointerType) and is_integer(value):
        # NULL (and 0) is an integer literal in MiniC.
        return True
    return False
