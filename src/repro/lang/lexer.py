"""Lexer for MiniC.

The lexer is a straightforward hand-written scanner.  The only unusual
feature is ``#pragma`` handling: a pragma directive occupies the rest of its
line and is emitted as a single :class:`~repro.lang.tokens.Token` of kind
``PRAGMA`` whose value is the directive body (the text after ``#pragma``).
The parser attaches pragma tokens to the statement that follows them, just
as clang associates ``#pragma omp``/``#pragma carmot`` with the next
statement.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import LexError
from repro.lang.tokens import KEYWORDS, PUNCTUATORS, SourcePos, Token, TokenKind

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}


class Lexer:
    """Converts MiniC source text into a token stream."""

    def __init__(self, source: str, filename: str = "<string>") -> None:
        self._src = source
        self._filename = filename
        self._index = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> List[Token]:
        """Lex the whole input and return the token list (ending in EOF)."""
        return list(self._iter_tokens())

    def _pos(self) -> SourcePos:
        return SourcePos(self._filename, self._line, self._col)

    def _peek(self, offset: int = 0) -> str:
        index = self._index + offset
        if index >= len(self._src):
            return ""
        return self._src[index]

    def _advance(self, count: int = 1) -> str:
        text = self._src[self._index : self._index + count]
        for ch in text:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._index += count
        return text

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            pos = self._pos()
            ch = self._peek()
            if not ch:
                yield Token(TokenKind.EOF, None, pos)
                return
            if ch == "#":
                yield self._lex_directive(pos)
            elif ch.isalpha() or ch == "_":
                yield self._lex_word(pos)
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._lex_number(pos)
            elif ch == '"':
                yield self._lex_string(pos)
            elif ch == "'":
                yield self._lex_char(pos)
            else:
                yield self._lex_punct(pos)

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch.isspace():
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._pos()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise LexError(f"unterminated block comment at {start}")
                    self._advance()
                self._advance(2)
            else:
                return

    def _lex_directive(self, pos: SourcePos) -> Token:
        line_start = self._index
        while self._peek() and self._peek() != "\n":
            self._advance()
        text = self._src[line_start : self._index].strip()
        if not text.startswith("#pragma"):
            raise LexError(f"unsupported directive {text.split()[0]!r} at {pos}")
        body = text[len("#pragma") :].strip()
        if not body:
            raise LexError(f"empty #pragma at {pos}")
        return Token(TokenKind.PRAGMA, body, pos)

    def _lex_word(self, pos: SourcePos) -> Token:
        start = self._index
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._src[start : self._index]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, pos)

    def _lex_number(self, pos: SourcePos) -> Token:
        start = self._index
        is_float = False
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self._src[start : self._index]
            return Token(TokenKind.INT_LIT, int(text, 16), pos)
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit() or (self._peek(1) in ("+", "-") and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._src[start : self._index]
        if is_float:
            return Token(TokenKind.FLOAT_LIT, float(text), pos)
        return Token(TokenKind.INT_LIT, int(text), pos)

    def _lex_string(self, pos: SourcePos) -> Token:
        self._advance()
        chars: List[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError(f"unterminated string literal at {pos}")
            if ch == '"':
                self._advance()
                return Token(TokenKind.STRING_LIT, "".join(chars), pos)
            if ch == "\\":
                self._advance()
                esc = self._advance()
                if esc not in _ESCAPES:
                    raise LexError(f"unknown escape \\{esc} at {pos}")
                chars.append(_ESCAPES[esc])
            else:
                chars.append(self._advance())

    def _lex_char(self, pos: SourcePos) -> Token:
        self._advance()
        ch = self._peek()
        if ch == "\\":
            self._advance()
            esc = self._advance()
            if esc not in _ESCAPES:
                raise LexError(f"unknown escape \\{esc} at {pos}")
            value = ord(_ESCAPES[esc])
        else:
            value = ord(self._advance())
        if self._peek() != "'":
            raise LexError(f"unterminated char literal at {pos}")
        self._advance()
        return Token(TokenKind.CHAR_LIT, value, pos)

    def _lex_punct(self, pos: SourcePos) -> Token:
        for punct in PUNCTUATORS:
            if self._src.startswith(punct, self._index):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, pos)
        raise LexError(f"unexpected character {self._peek()!r} at {pos}")


def tokenize(source: str, filename: str = "<string>") -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokens()
