"""Parsing of ``#pragma`` directives.

Two pragma families matter to this reproduction:

``#pragma carmot roi [clauses]``
    Marks the next statement as a Region Of Interest for PSEC, exactly like
    the ``#pragma carmot roi`` of Figure 1 in the paper.  Clauses:

    - ``abstraction(parallel_for | task | smart_pointers | stats)`` — the
      abstraction the programmer wants a recommendation for;
    - ``name(identifier)`` — an optional human-readable ROI name.

``#pragma omp <directive> [clauses]``
    Records the *original* OpenMP parallelism of the benchmark ports so the
    Figure 6 harness can compare hand-written pragmas against
    CARMOT-generated ones.  Supported directives: ``parallel for``,
    ``parallel``, ``parallel sections``, ``section``, ``critical``,
    ``ordered``, ``task``, ``barrier``, ``master``.  Clauses: ``private``,
    ``firstprivate``, ``lastprivate``, ``shared``, ``reduction(op:var)``,
    ``depend(in: ...)``, ``depend(out: ...)``, ``num_threads(n)``,
    ``ordered``, ``schedule(...)`` (parsed, ignored by the simulator).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PragmaError

#: Abstractions a ``carmot roi`` pragma may request, matching §3.2.
CARMOT_ABSTRACTIONS = (
    "parallel_for",
    "task",
    "smart_pointers",
    "stats",
)

OMP_DIRECTIVES = (
    "parallel for",
    "parallel sections",
    "parallel",
    "section",
    "critical",
    "ordered",
    "task",
    "barrier",
    "master",
)

#: OpenMP reduction operators CARMOT recognises (§3.2: "one of the
#: OpenMP-supported reduction operators such as +").
REDUCTION_OPERATORS = ("+", "*", "-", "&", "|", "^", "&&", "||", "min", "max")


@dataclass
class Pragma:
    """Base class for parsed pragmas."""

    raw: str


@dataclass
class CarmotRoi(Pragma):
    abstraction: Optional[str] = None
    name: Optional[str] = None


@dataclass
class OmpPragma(Pragma):
    directive: str = ""
    private: List[str] = field(default_factory=list)
    firstprivate: List[str] = field(default_factory=list)
    lastprivate: List[str] = field(default_factory=list)
    shared: List[str] = field(default_factory=list)
    reductions: List[Tuple[str, str]] = field(default_factory=list)  # (op, var)
    depend_in: List[str] = field(default_factory=list)
    depend_out: List[str] = field(default_factory=list)
    num_threads: Optional[int] = None
    has_ordered_clause: bool = False


_CLAUSE_RE = re.compile(r"([A-Za-z_]+)\s*(\(([^()]*)\))?")


def parse_pragma(body: str) -> Pragma:
    """Parse the text after ``#pragma`` into a structured pragma."""
    stripped = body.strip()
    if stripped.startswith("carmot"):
        return _parse_carmot(stripped)
    if stripped.startswith("omp"):
        return _parse_omp(stripped)
    raise PragmaError(f"unknown pragma family: #pragma {stripped}")


def _parse_carmot(body: str) -> CarmotRoi:
    rest = body[len("carmot") :].strip()
    if not rest.startswith("roi"):
        raise PragmaError(f"expected 'roi' after 'carmot' in #pragma {body}")
    rest = rest[len("roi") :].strip()
    pragma = CarmotRoi(raw=body)
    for match in _CLAUSE_RE.finditer(rest):
        clause, _, arg = match.group(1), match.group(2), match.group(3)
        if not clause:
            continue
        if clause == "abstraction":
            if arg is None or arg.strip() not in CARMOT_ABSTRACTIONS:
                raise PragmaError(
                    f"abstraction clause needs one of {CARMOT_ABSTRACTIONS}, "
                    f"got {arg!r}"
                )
            pragma.abstraction = arg.strip()
        elif clause == "name":
            if not arg:
                raise PragmaError("name clause needs an identifier argument")
            pragma.name = arg.strip()
        else:
            raise PragmaError(f"unknown carmot roi clause {clause!r}")
    return pragma


def _split_vars(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _parse_omp(body: str) -> OmpPragma:
    rest = body[len("omp") :].strip()
    directive = None
    for candidate in OMP_DIRECTIVES:
        if rest == candidate or rest.startswith(candidate + " "):
            directive = candidate
            rest = rest[len(candidate) :].strip()
            break
    if directive is None:
        raise PragmaError(f"unknown omp directive in #pragma {body}")
    pragma = OmpPragma(raw=body, directive=directive)
    for match in _CLAUSE_RE.finditer(rest):
        clause, paren, arg = match.group(1), match.group(2), match.group(3)
        if not clause:
            continue
        if clause in ("private", "firstprivate", "lastprivate", "shared"):
            if arg is None:
                raise PragmaError(f"{clause} clause needs arguments")
            getattr(pragma, clause).extend(_split_vars(arg))
        elif clause == "reduction":
            if arg is None or ":" not in arg:
                raise PragmaError("reduction clause must be reduction(op:var)")
            op, _, names = arg.partition(":")
            op = op.strip()
            if op not in REDUCTION_OPERATORS:
                raise PragmaError(f"unsupported reduction operator {op!r}")
            for name in _split_vars(names):
                pragma.reductions.append((op, name))
        elif clause == "depend":
            if arg is None or ":" not in arg:
                raise PragmaError("depend clause must be depend(in|out: vars)")
            kind, _, names = arg.partition(":")
            kind = kind.strip()
            if kind == "in":
                pragma.depend_in.extend(_split_vars(names))
            elif kind == "out":
                pragma.depend_out.extend(_split_vars(names))
            else:
                raise PragmaError(f"depend kind must be in/out, got {kind!r}")
        elif clause == "num_threads":
            if arg is None or not arg.strip().isdigit():
                raise PragmaError("num_threads clause needs an integer")
            pragma.num_threads = int(arg.strip())
        elif clause == "ordered" and paren is None:
            pragma.has_ordered_clause = True
        elif clause == "schedule":
            continue  # accepted, irrelevant to the simulator
        else:
            raise PragmaError(f"unknown omp clause {clause!r} in #pragma {body}")
    return pragma


def clause_summary(pragma: OmpPragma) -> Dict[str, object]:
    """A normalized dict view of an OpenMP pragma, used for comparisons."""
    return {
        "directive": pragma.directive,
        "private": sorted(pragma.private),
        "firstprivate": sorted(pragma.firstprivate),
        "lastprivate": sorted(pragma.lastprivate),
        "shared": sorted(pragma.shared),
        "reductions": sorted(pragma.reductions),
        "depend_in": sorted(pragma.depend_in),
        "depend_out": sorted(pragma.depend_out),
    }
