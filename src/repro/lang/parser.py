"""Recursive-descent parser for MiniC.

The grammar is a compact C subset: struct definitions (including the
``typedef struct {...} NAME;`` idiom the ``nab`` port uses), global
variables, functions, the usual statements, and C expressions with standard
precedence.  ``#pragma`` tokens are attached to the statement that follows
them, which is how Regions Of Interest (``#pragma carmot roi``) and the
original OpenMP annotations enter the AST.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.lang import astnodes as ast
from repro.lang import types as ct
from repro.lang.lexer import tokenize
from repro.lang.pragmas import Pragma, parse_pragma
from repro.lang.tokens import Token, TokenKind

_TYPE_KEYWORDS = ("int", "float", "char", "void", "struct")

# Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE: Dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")


class Parser:
    """Parses a token stream into a :class:`repro.lang.astnodes.Program`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._structs: Dict[str, ct.StructType] = {}
        self._typedefs: Dict[str, ct.Type] = {}

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        tok = self._tokens[self._index]
        if tok.kind is not TokenKind.EOF:
            self._index += 1
        return tok

    def _expect_punct(self, text: str) -> Token:
        tok = self._next()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, got {tok}")
        return tok

    def _expect_keyword(self, text: str) -> Token:
        tok = self._next()
        if not tok.is_keyword(text):
            raise ParseError(f"expected keyword {text!r}, got {tok}")
        return tok

    def _expect_ident(self) -> Token:
        tok = self._next()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, got {tok}")
        return tok

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._next()
            return True
        return False

    # -- type parsing ------------------------------------------------------

    def _at_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind is TokenKind.KEYWORD and tok.value in _TYPE_KEYWORDS:
            return True
        return tok.kind is TokenKind.IDENT and tok.value in self._typedefs

    def _struct_type(self, name: str) -> ct.StructType:
        if name not in self._structs:
            self._structs[name] = ct.StructType(name)
        return self._structs[name]

    def _parse_base_type(self) -> ct.Type:
        tok = self._next()
        if tok.is_keyword("int"):
            base: ct.Type = ct.INT
        elif tok.is_keyword("float"):
            base = ct.FLOAT
        elif tok.is_keyword("char"):
            base = ct.CHAR
        elif tok.is_keyword("void"):
            base = ct.VOID
        elif tok.is_keyword("struct"):
            name = self._expect_ident()
            base = self._struct_type(str(name.value))
        elif tok.kind is TokenKind.IDENT and tok.value in self._typedefs:
            base = self._typedefs[str(tok.value)]
        else:
            raise ParseError(f"expected a type, got {tok}")
        return base

    def _parse_type(self) -> ct.Type:
        base = self._parse_base_type()
        while self._accept_punct("*"):
            base = ct.PointerType(base)
        return base

    def _parse_array_suffix(self, base: ct.Type) -> ct.Type:
        """Parse ``[N][M]...`` after a declarator name."""
        dims: List[int] = []
        while self._accept_punct("["):
            size_tok = self._next()
            if size_tok.kind is not TokenKind.INT_LIT:
                raise ParseError(f"array size must be an integer literal, got {size_tok}")
            dims.append(int(size_tok.value))  # type: ignore[arg-type]
            self._expect_punct("]")
        for dim in reversed(dims):
            base = ct.ArrayType(base, dim)
        return base

    # -- top level ----------------------------------------------------------

    def parse_program(self, filename: str = "<string>") -> ast.Program:
        structs: List[ast.StructDef] = []
        globals_: List[ast.GlobalVar] = []
        functions: List[ast.FunctionDef] = []
        first = self._peek()
        while self._peek().kind is not TokenKind.EOF:
            tok = self._peek()
            if tok.kind is TokenKind.PRAGMA:
                raise ParseError(f"pragma outside function body at {tok.pos}")
            if tok.is_keyword("typedef"):
                structs.append(self._parse_typedef())
                continue
            if tok.is_keyword("struct") and self._peek(2).is_punct("{"):
                structs.append(self._parse_struct_def())
                continue
            decl = self._parse_global_or_function()
            if isinstance(decl, ast.FunctionDef):
                functions.append(decl)
            else:
                globals_.append(decl)
        return ast.Program(first.pos, structs, globals_, functions)

    def _parse_struct_body(self, struct: ct.StructType) -> List[Tuple[str, ct.Type]]:
        self._expect_punct("{")
        fields: List[Tuple[str, ct.Type]] = []
        while not self._accept_punct("}"):
            ftype = self._parse_type()
            while True:
                fname = self._expect_ident()
                full = self._parse_array_suffix(ftype)
                fields.append((str(fname.value), full))
                if not self._accept_punct(","):
                    break
            self._expect_punct(";")
        struct.set_body(fields)
        return fields

    def _parse_struct_def(self) -> ast.StructDef:
        pos = self._expect_keyword("struct").pos
        name = str(self._expect_ident().value)
        struct = self._struct_type(name)
        fields = self._parse_struct_body(struct)
        self._expect_punct(";")
        return ast.StructDef(pos, name, fields)

    def _parse_typedef(self) -> ast.StructDef:
        pos = self._expect_keyword("typedef").pos
        self._expect_keyword("struct")
        tag: Optional[str] = None
        if self._peek().kind is TokenKind.IDENT and self._peek(1).is_punct("{"):
            tag = str(self._expect_ident().value)
        struct_name = tag if tag is not None else f"__anon_{pos.line}"
        struct = self._struct_type(struct_name)
        fields = self._parse_struct_body(struct)
        alias = str(self._expect_ident().value)
        self._expect_punct(";")
        self._typedefs[alias] = struct
        return ast.StructDef(pos, struct_name, fields)

    def _parse_global_or_function(self) -> object:
        pos = self._peek().pos
        base = self._parse_type()
        name = str(self._expect_ident().value)
        if self._peek().is_punct("("):
            return self._parse_function(pos, base, name)
        var_type = self._parse_array_suffix(base)
        init: Optional[ast.Expr] = None
        if self._accept_punct("="):
            init = self._parse_expr()
        self._expect_punct(";")
        return ast.GlobalVar(pos, var_type, name, init)

    def _parse_function(
        self, pos, return_type: ct.Type, name: str
    ) -> ast.FunctionDef:
        self._expect_punct("(")
        params: List[ast.Param] = []
        if not self._peek().is_punct(")"):
            if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
                self._next()
            else:
                while True:
                    ppos = self._peek().pos
                    ptype = self._parse_type()
                    pname = str(self._expect_ident().value)
                    ptype = ct.decay(self._parse_array_suffix(ptype))
                    params.append(ast.Param(ppos, ptype, pname))
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if self._accept_punct(";"):
            return ast.FunctionDef(pos, return_type, name, params, None)
        body = self._parse_block()
        return ast.FunctionDef(pos, return_type, name, params, body)

    # -- statements ----------------------------------------------------------

    def _collect_pragmas(self) -> List[Pragma]:
        pragmas: List[Pragma] = []
        while self._peek().kind is TokenKind.PRAGMA:
            tok = self._next()
            pragmas.append(parse_pragma(str(tok.value)))
        return pragmas

    def _parse_block(self) -> ast.Block:
        pos = self._expect_punct("{").pos
        stmts: List[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError(f"unterminated block starting at {pos}")
            stmts.append(self._parse_stmt())
        self._expect_punct("}")
        return ast.Block(pos, stmts)

    def _parse_stmt(self) -> ast.Stmt:
        pragmas = self._collect_pragmas()
        stmt = self._parse_stmt_inner()
        if pragmas:
            stmt.pragmas = pragmas
        return stmt

    def _parse_stmt_inner(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("do"):
            return self._parse_do_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("return"):
            self._next()
            value = None if self._peek().is_punct(";") else self._parse_expr()
            self._expect_punct(";")
            return ast.Return(tok.pos, value)
        if tok.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return ast.Break(tok.pos)
        if tok.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return ast.Continue(tok.pos)
        if self._at_type() and not self._peek(1).is_punct("("):
            return self._parse_var_decl()
        if tok.is_punct(";"):
            self._next()
            return ast.Block(tok.pos, [])
        expr = self._parse_expr()
        self._expect_punct(";")
        return ast.ExprStmt(tok.pos, expr)

    def _parse_var_decl(self) -> ast.Stmt:
        pos = self._peek().pos
        base = self._parse_type()
        decls: List[ast.Stmt] = []
        while True:
            name = str(self._expect_ident().value)
            var_type = self._parse_array_suffix(base)
            init: Optional[ast.Expr] = None
            if self._accept_punct("="):
                init = self._parse_assignment()
            decls.append(ast.VarDecl(pos, var_type, name, init))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return ast.DeclGroup(pos, decls)

    def _parse_if(self) -> ast.Stmt:
        pos = self._expect_keyword("if").pos
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then = self._parse_stmt()
        otherwise: Optional[ast.Stmt] = None
        if self._peek().is_keyword("else"):
            self._next()
            otherwise = self._parse_stmt()
        return ast.If(pos, cond, then, otherwise)

    def _parse_while(self) -> ast.Stmt:
        pos = self._expect_keyword("while").pos
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_stmt()
        return ast.While(pos, cond, body)

    def _parse_do_while(self) -> ast.Stmt:
        pos = self._expect_keyword("do").pos
        body = self._parse_stmt()
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(pos, body, cond)

    def _parse_for(self) -> ast.Stmt:
        pos = self._expect_keyword("for").pos
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_punct(";"):
            if self._at_type():
                init = self._parse_var_decl()
            else:
                expr = self._parse_expr()
                self._expect_punct(";")
                init = ast.ExprStmt(pos, expr)
        else:
            self._next()
        cond: Optional[ast.Expr] = None
        if not self._peek().is_punct(";"):
            cond = self._parse_expr()
        self._expect_punct(";")
        step: Optional[ast.Expr] = None
        if not self._peek().is_punct(")"):
            step = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_stmt()
        return ast.For(pos, init, cond, step, body)

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_ternary()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.value in _ASSIGN_OPS:
            self._next()
            rhs = self._parse_assignment()
            return ast.Assign(tok.pos, str(tok.value), lhs, rhs)
        return lhs

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._peek().is_punct("?"):
            pos = self._next().pos
            then = self._parse_expr()
            self._expect_punct(":")
            otherwise = self._parse_assignment()
            return ast.Cond(pos, cond, then, otherwise)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind is not TokenKind.PUNCT:
                return lhs
            prec = _BINARY_PRECEDENCE.get(str(tok.value), 0)
            if prec == 0 or prec <= min_prec:
                return lhs
            self._next()
            rhs = self._parse_binary(prec)
            lhs = ast.BinOp(tok.pos, str(tok.value), lhs, rhs)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.value in ("-", "+", "!", "~"):
            self._next()
            return ast.UnaryOp(tok.pos, str(tok.value), self._parse_unary())
        if tok.is_punct("*"):
            self._next()
            return ast.Deref(tok.pos, self._parse_unary())
        if tok.is_punct("&"):
            self._next()
            return ast.AddressOf(tok.pos, self._parse_unary())
        if tok.kind is TokenKind.PUNCT and tok.value in ("++", "--"):
            self._next()
            return ast.IncDec(tok.pos, str(tok.value), self._parse_unary(), True)
        if tok.is_keyword("sizeof"):
            self._next()
            self._expect_punct("(")
            if self._at_type():
                target: object = self._parse_type()
                target = self._parse_array_suffix(target)  # type: ignore[arg-type]
            else:
                target = self._parse_expr()
            self._expect_punct(")")
            return ast.SizeOf(tok.pos, target)  # type: ignore[arg-type]
        if tok.is_punct("(") and self._at_type(1):
            self._next()
            to_type = self._parse_type()
            self._expect_punct(")")
            return ast.Cast(tok.pos, to_type, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("("):
                self._next()
                args: List[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = ast.Call(tok.pos, expr, args)
            elif tok.is_punct("["):
                self._next()
                index = self._parse_expr()
                self._expect_punct("]")
                expr = ast.Index(tok.pos, expr, index)
            elif tok.is_punct("."):
                self._next()
                name = str(self._expect_ident().value)
                expr = ast.Member(tok.pos, expr, name, False)
            elif tok.is_punct("->"):
                self._next()
                name = str(self._expect_ident().value)
                expr = ast.Member(tok.pos, expr, name, True)
            elif tok.kind is TokenKind.PUNCT and tok.value in ("++", "--"):
                self._next()
                expr = ast.IncDec(tok.pos, str(tok.value), expr, False)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._next()
        if tok.kind is TokenKind.INT_LIT:
            return ast.IntLit(tok.pos, int(tok.value))  # type: ignore[arg-type]
        if tok.kind is TokenKind.CHAR_LIT:
            return ast.IntLit(tok.pos, int(tok.value))  # type: ignore[arg-type]
        if tok.kind is TokenKind.FLOAT_LIT:
            return ast.FloatLit(tok.pos, float(tok.value))  # type: ignore[arg-type]
        if tok.kind is TokenKind.STRING_LIT:
            return ast.StringLit(tok.pos, str(tok.value))
        if tok.is_keyword("NULL"):
            return ast.NullLit(tok.pos)
        if tok.kind is TokenKind.IDENT:
            return ast.VarRef(tok.pos, str(tok.value))
        if tok.is_punct("("):
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok} in expression")


def parse(source: str, filename: str = "<string>") -> ast.Program:
    """Parse MiniC source text into an AST."""
    return Parser(tokenize(source, filename)).parse_program(filename)
