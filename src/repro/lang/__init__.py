"""MiniC front-end: lexer, parser, pragmas, types, semantic analysis."""

from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.pragmas import CarmotRoi, OmpPragma, Pragma, parse_pragma
from repro.lang.sema import SemaResult, Symbol, SymbolKind, analyze

__all__ = [
    "tokenize",
    "parse",
    "parse_pragma",
    "Pragma",
    "CarmotRoi",
    "OmpPragma",
    "analyze",
    "SemaResult",
    "Symbol",
    "SymbolKind",
]
