"""Semantic analysis for MiniC.

Resolves every name to a :class:`Symbol`, fills in ``ctype`` on every
expression, and enforces the (small) MiniC typing rules.  The analysis
annotates ``VarRef`` nodes with a ``symbol`` attribute; lowering relies on
those annotations, so :func:`analyze` must run before
:func:`repro.ir.lowering.lower_program`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import builtins_spec
from repro.errors import SemanticError
from repro.lang import astnodes as ast
from repro.lang import types as ct
from repro.lang.tokens import SourcePos


class SymbolKind(enum.Enum):
    LOCAL = "local"
    PARAM = "param"
    GLOBAL = "global"
    FUNCTION = "function"
    BUILTIN = "builtin"


@dataclass
class Symbol:
    """A resolved name.  ``uid`` is unique across the whole program."""

    name: str
    kind: SymbolKind
    ctype: ct.Type
    pos: Optional[SourcePos]
    uid: int

    @property
    def is_variable(self) -> bool:
        return self.kind in (SymbolKind.LOCAL, SymbolKind.PARAM, SymbolKind.GLOBAL)


@dataclass
class FunctionInfo:
    """Per-function semantic results."""

    definition: ast.FunctionDef
    symbol: Symbol
    locals: List[Symbol] = field(default_factory=list)
    params: List[Symbol] = field(default_factory=list)


@dataclass
class SemaResult:
    """Whole-program semantic results consumed by lowering."""

    program: ast.Program
    globals: Dict[str, Symbol]
    functions: Dict[str, FunctionInfo]


class _Scope:
    def __init__(self, parent: Optional["_Scope"]) -> None:
        self.parent = parent
        self.names: Dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> None:
        if symbol.name in self.names:
            raise SemanticError(f"redefinition of {symbol.name!r} at {symbol.pos}")
        self.names[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Analyzer:
    """Runs semantic analysis over a parsed program."""

    def __init__(self, program: ast.Program) -> None:
        self._program = program
        self._uid = itertools.count()
        self._globals = _Scope(None)
        self._functions: Dict[str, FunctionInfo] = {}
        self._current: Optional[FunctionInfo] = None
        self._loop_depth = 0

    def run(self) -> SemaResult:
        for name, spec in builtins_spec.BUILTINS.items():
            self._globals.define(
                Symbol(name, SymbolKind.BUILTIN, spec.function_type, None,
                       next(self._uid))
            )
        for gvar in self._program.globals:
            self._check_global(gvar)
        for func in self._program.functions:
            ftype = ct.FunctionType(
                func.return_type, tuple(p.param_type for p in func.params)
            )
            existing = self._globals.lookup(func.name)
            if existing is not None:
                # Forward declaration + definition: signatures must match
                # and at most one may carry a body.
                if (existing.kind is not SymbolKind.FUNCTION
                        or existing.ctype != ftype):
                    raise SemanticError(
                        f"conflicting declarations of {func.name!r} at "
                        f"{func.pos}"
                    )
                info = self._functions[func.name]
                if info.definition.body is not None and func.body is not None:
                    raise SemanticError(
                        f"redefinition of function {func.name!r} at {func.pos}"
                    )
                if func.body is not None:
                    info.definition = func
                continue
            sym = Symbol(func.name, SymbolKind.FUNCTION, ftype, func.pos,
                         next(self._uid))
            self._globals.define(sym)
            self._functions[func.name] = FunctionInfo(func, sym)
        for func in self._program.functions:
            if func.body is not None:
                self._check_function(self._functions[func.name])
        return SemaResult(
            self._program,
            {
                name: sym
                for name, sym in self._globals.names.items()
                if sym.kind is SymbolKind.GLOBAL
            },
            self._functions,
        )

    # -- declarations -------------------------------------------------------

    def _check_global(self, gvar: ast.GlobalVar) -> None:
        if isinstance(gvar.var_type, ct.VoidType):
            raise SemanticError(f"global {gvar.name!r} cannot have type void")
        sym = Symbol(gvar.name, SymbolKind.GLOBAL, gvar.var_type, gvar.pos,
                     next(self._uid))
        self._globals.define(sym)
        if gvar.init is not None:
            if not isinstance(gvar.init, (ast.IntLit, ast.FloatLit, ast.NullLit)):
                raise SemanticError(
                    f"global initializer for {gvar.name!r} must be a literal"
                )
            self._check_expr(gvar.init, self._globals)

    def _check_function(self, info: FunctionInfo) -> None:
        self._current = info
        scope = _Scope(self._globals)
        for param in info.definition.params:
            sym = Symbol(param.name, SymbolKind.PARAM, param.param_type,
                         param.pos, next(self._uid))
            scope.define(sym)
            info.params.append(sym)
            setattr(param, "symbol", sym)
        assert info.definition.body is not None
        self._check_block(info.definition.body, scope)
        self._current = None

    # -- statements -----------------------------------------------------------

    def _check_block(self, block: ast.Block, parent: _Scope) -> None:
        scope = _Scope(parent)
        for stmt in block.stmts:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt, scope)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self._check_var_decl(decl, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._require_scalar(self._check_expr(stmt.cond, scope), stmt.pos)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self._require_scalar(self._check_expr(stmt.cond, scope), stmt.pos)
            self._loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._require_scalar(self._check_expr(stmt.cond, inner), stmt.pos)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._loop_depth += 1
            self._check_stmt(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            assert self._current is not None
            expected = self._current.definition.return_type
            if stmt.value is None:
                if not isinstance(expected, ct.VoidType):
                    raise SemanticError(f"missing return value at {stmt.pos}")
            else:
                actual = self._check_expr(stmt.value, scope)
                if isinstance(expected, ct.VoidType):
                    raise SemanticError(f"void function returns a value at {stmt.pos}")
                if not ct.assignable(expected, actual):
                    raise SemanticError(
                        f"cannot return {actual} from function returning "
                        f"{expected} at {stmt.pos}"
                    )
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise SemanticError(f"{type(stmt).__name__.lower()} outside loop "
                                    f"at {stmt.pos}")
        else:
            raise SemanticError(f"unhandled statement {type(stmt).__name__}")

    def _check_var_decl(self, stmt: ast.VarDecl, scope: _Scope) -> None:
        if isinstance(stmt.var_type, ct.VoidType):
            raise SemanticError(f"variable {stmt.name!r} cannot have type void")
        sym = Symbol(stmt.name, SymbolKind.LOCAL, stmt.var_type, stmt.pos,
                     next(self._uid))
        scope.define(sym)
        assert self._current is not None
        self._current.locals.append(sym)
        setattr(stmt, "symbol", sym)
        if stmt.init is not None:
            init_type = self._check_expr(stmt.init, scope)
            if not ct.assignable(stmt.var_type, init_type):
                raise SemanticError(
                    f"cannot initialize {stmt.var_type} {stmt.name!r} with "
                    f"{init_type} at {stmt.pos}"
                )

    # -- expressions --------------------------------------------------------------

    def _require_scalar(self, t: ct.Type, pos: SourcePos) -> None:
        if not ct.decay(t).is_scalar:
            raise SemanticError(f"expected a scalar condition, got {t} at {pos}")

    def _is_lvalue(self, expr: ast.Expr) -> bool:
        return isinstance(expr, (ast.VarRef, ast.Deref, ast.Index, ast.Member))

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> ct.Type:
        result = self._check_expr_inner(expr, scope)
        expr.ctype = result
        return result

    def _check_expr_inner(self, expr: ast.Expr, scope: _Scope) -> ct.Type:
        if isinstance(expr, ast.IntLit):
            return ct.INT
        if isinstance(expr, ast.FloatLit):
            return ct.FLOAT
        if isinstance(expr, ast.StringLit):
            return ct.PointerType(ct.CHAR)
        if isinstance(expr, ast.NullLit):
            return ct.PointerType(ct.CHAR)
        if isinstance(expr, ast.VarRef):
            sym = scope.lookup(expr.name)
            if sym is None:
                raise SemanticError(f"use of undeclared name {expr.name!r} at {expr.pos}")
            setattr(expr, "symbol", sym)
            return sym.ctype
        if isinstance(expr, ast.BinOp):
            return self._check_binop(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            operand = ct.decay(self._check_expr(expr.operand, scope))
            if expr.op in ("-", "+"):
                if not ct.is_arithmetic(operand):
                    raise SemanticError(f"unary {expr.op} needs arithmetic operand "
                                        f"at {expr.pos}")
                return operand
            if expr.op == "!":
                self._require_scalar(operand, expr.pos)
                return ct.INT
            if expr.op == "~":
                if not ct.is_integer(operand):
                    raise SemanticError(f"~ needs an integer operand at {expr.pos}")
                return ct.INT
            raise SemanticError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.Assign):
            return self._check_assign(expr, scope)
        if isinstance(expr, ast.IncDec):
            target = self._check_expr(expr.target, scope)
            if not self._is_lvalue(expr.target):
                raise SemanticError(f"{expr.op} needs an lvalue at {expr.pos}")
            if not (ct.is_arithmetic(target) or isinstance(target, ct.PointerType)):
                raise SemanticError(f"{expr.op} needs arithmetic/pointer operand "
                                    f"at {expr.pos}")
            return target
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.Index):
            base = ct.decay(self._check_expr(expr.base, scope))
            index = ct.decay(self._check_expr(expr.index, scope))
            if not isinstance(base, ct.PointerType):
                raise SemanticError(f"cannot index non-pointer {base} at {expr.pos}")
            if not ct.is_integer(index):
                raise SemanticError(f"array index must be integer at {expr.pos}")
            return base.pointee
        if isinstance(expr, ast.Member):
            base = self._check_expr(expr.base, scope)
            if expr.arrow:
                base = ct.decay(base)
                if not isinstance(base, ct.PointerType):
                    raise SemanticError(f"-> on non-pointer {base} at {expr.pos}")
                base = base.pointee
            if not isinstance(base, ct.StructType):
                raise SemanticError(f"member access on non-struct {base} at {expr.pos}")
            return base.field_type(expr.name)
        if isinstance(expr, ast.AddressOf):
            operand = self._check_expr(expr.operand, scope)
            if isinstance(expr.operand, ast.VarRef):
                sym = getattr(expr.operand, "symbol")
                if sym.kind in (SymbolKind.FUNCTION, SymbolKind.BUILTIN):
                    return ct.PointerType(sym.ctype)
            if not self._is_lvalue(expr.operand):
                raise SemanticError(f"& needs an lvalue at {expr.pos}")
            return ct.PointerType(operand)
        if isinstance(expr, ast.Deref):
            operand = ct.decay(self._check_expr(expr.operand, scope))
            if not isinstance(operand, ct.PointerType):
                raise SemanticError(f"cannot dereference {operand} at {expr.pos}")
            return operand.pointee
        if isinstance(expr, ast.SizeOf):
            if isinstance(expr.target, ast.Expr):
                self._check_expr(expr.target, scope)
            return ct.INT
        if isinstance(expr, ast.Cast):
            self._check_expr(expr.operand, scope)
            return expr.to_type
        if isinstance(expr, ast.Cond):
            self._require_scalar(self._check_expr(expr.cond, scope), expr.pos)
            then = ct.decay(self._check_expr(expr.then, scope))
            other = ct.decay(self._check_expr(expr.otherwise, scope))
            if ct.is_arithmetic(then) and ct.is_arithmetic(other):
                return ct.common_arithmetic_type(then, other)
            if then == other:
                return then
            if isinstance(then, ct.PointerType) and isinstance(other, ct.PointerType):
                return then
            raise SemanticError(f"incompatible ternary arms {then} / {other} "
                                f"at {expr.pos}")
        raise SemanticError(f"unhandled expression {type(expr).__name__}")

    def _check_binop(self, expr: ast.BinOp, scope: _Scope) -> ct.Type:
        lhs = ct.decay(self._check_expr(expr.lhs, scope))
        rhs = ct.decay(self._check_expr(expr.rhs, scope))
        op = expr.op
        if op in ("&&", "||"):
            self._require_scalar(lhs, expr.pos)
            self._require_scalar(rhs, expr.pos)
            return ct.INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if ct.is_arithmetic(lhs) and ct.is_arithmetic(rhs):
                return ct.INT
            if isinstance(lhs, ct.PointerType) or isinstance(rhs, ct.PointerType):
                return ct.INT
            raise SemanticError(f"cannot compare {lhs} and {rhs} at {expr.pos}")
        if op in ("+", "-"):
            if isinstance(lhs, ct.PointerType) and ct.is_integer(rhs):
                return lhs
            if op == "+" and ct.is_integer(lhs) and isinstance(rhs, ct.PointerType):
                return rhs
            if op == "-" and isinstance(lhs, ct.PointerType) and lhs == rhs:
                return ct.INT
            return ct.common_arithmetic_type(lhs, rhs)
        if op in ("*", "/"):
            return ct.common_arithmetic_type(lhs, rhs)
        if op in ("%", "<<", ">>", "&", "|", "^"):
            if not (ct.is_integer(lhs) and ct.is_integer(rhs)):
                raise SemanticError(f"{op} needs integer operands at {expr.pos}")
            return ct.INT
        raise SemanticError(f"unknown binary operator {op!r}")

    def _check_assign(self, expr: ast.Assign, scope: _Scope) -> ct.Type:
        target = self._check_expr(expr.target, scope)
        value = self._check_expr(expr.value, scope)
        if not self._is_lvalue(expr.target):
            raise SemanticError(f"assignment target is not an lvalue at {expr.pos}")
        if isinstance(target, ct.ArrayType):
            raise SemanticError(f"cannot assign to array at {expr.pos}")
        if expr.op != "=":
            op = expr.op[:-1]
            decayed = ct.decay(target)
            if op in ("%", "<<", ">>", "&", "|", "^"):
                if not (ct.is_integer(decayed) and ct.is_integer(ct.decay(value))):
                    raise SemanticError(f"{expr.op} needs integers at {expr.pos}")
            elif isinstance(decayed, ct.PointerType):
                if op not in ("+", "-") or not ct.is_integer(ct.decay(value)):
                    raise SemanticError(f"bad pointer compound assign at {expr.pos}")
            elif not (ct.is_arithmetic(decayed) and ct.is_arithmetic(ct.decay(value))):
                raise SemanticError(f"{expr.op} needs arithmetic operands at {expr.pos}")
            return target
        if not ct.assignable(target, value):
            raise SemanticError(f"cannot assign {value} to {target} at {expr.pos}")
        return target

    def _check_call(self, expr: ast.Call, scope: _Scope) -> ct.Type:
        callee_type = self._check_expr(expr.callee, scope)
        ftype: Optional[ct.FunctionType] = None
        if isinstance(callee_type, ct.FunctionType):
            ftype = callee_type
        else:
            decayed = ct.decay(callee_type)
            if isinstance(decayed, ct.PointerType) and isinstance(
                decayed.pointee, ct.FunctionType
            ):
                ftype = decayed.pointee
        if ftype is None:
            raise SemanticError(f"called object is not a function at {expr.pos}")
        if len(expr.args) != len(ftype.param_types):
            raise SemanticError(
                f"call expects {len(ftype.param_types)} args, got "
                f"{len(expr.args)} at {expr.pos}"
            )
        for arg, expected in zip(expr.args, ftype.param_types):
            actual = self._check_expr(arg, scope)
            if not ct.assignable(expected, actual):
                raise SemanticError(
                    f"argument type {actual} incompatible with {expected} "
                    f"at {arg.pos}"
                )
        return ftype.return_type


def analyze(program: ast.Program) -> SemaResult:
    """Run semantic analysis; raises :class:`SemanticError` on bad programs."""
    return Analyzer(program).run()
