"""Abstract syntax tree for MiniC.

Nodes are plain dataclasses.  Statements carry the list of pragmas that
immediately preceded them in the source (``#pragma carmot roi`` marks a
Region Of Interest; ``#pragma omp`` records the benchmark's original
parallelism).  Expressions get a ``ctype`` attribute filled in by semantic
analysis (:mod:`repro.lang.sema`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.lang.pragmas import Pragma
from repro.lang.tokens import SourcePos
from repro.lang.types import Type


@dataclass
class Node:
    pos: SourcePos


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions; ``ctype`` is set by semantic analysis."""

    ctype: Optional[Type] = field(default=None, init=False, compare=False)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class NullLit(Expr):
    pass


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class BinOp(Expr):
    """Binary arithmetic/comparison/logical operator.

    ``&&``/``||`` short-circuit and are lowered to control flow.
    """

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class UnaryOp(Expr):
    op: str  # one of -, !, ~, +
    operand: Expr


@dataclass
class Assign(Expr):
    """Assignment; ``op`` is ``=`` or a compound operator like ``+=``."""

    op: str
    target: Expr
    value: Expr


@dataclass
class IncDec(Expr):
    op: str  # ++ or --
    target: Expr
    is_prefix: bool


@dataclass
class Call(Expr):
    callee: Expr
    args: List[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    base: Expr
    name: str
    arrow: bool


@dataclass
class AddressOf(Expr):
    operand: Expr


@dataclass
class Deref(Expr):
    operand: Expr


@dataclass
class SizeOf(Expr):
    target: Union[Type, Expr]


@dataclass
class Cast(Expr):
    to_type: Type
    operand: Expr


@dataclass
class Cond(Expr):
    """Ternary ``cond ? a : b``."""

    cond: Expr
    then: Expr
    otherwise: Expr


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pragmas: List[Pragma] = field(default_factory=list, init=False, compare=False)


@dataclass
class Block(Stmt):
    stmts: List[Stmt]


@dataclass
class VarDecl(Stmt):
    """A single local variable declaration (``int x = e;``)."""

    var_type: Type
    name: str
    init: Optional[Expr]


@dataclass
class DeclGroup(Stmt):
    """Several VarDecls from one source statement (``int x, y;``).

    Unlike :class:`Block`, a DeclGroup does not open a new scope.
    """

    decls: List["VarDecl"]


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt]


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class StructDef(Node):
    name: str
    fields: List[Tuple[str, Type]]


@dataclass
class GlobalVar(Node):
    var_type: Type
    name: str
    init: Optional[Expr]


@dataclass
class Param(Node):
    param_type: Type
    name: str


@dataclass
class FunctionDef(Node):
    return_type: Type
    name: str
    params: List[Param]
    body: Optional[Block]  # None for extern declarations


@dataclass
class Program(Node):
    structs: List[StructDef]
    globals: List[GlobalVar]
    functions: List[FunctionDef]

    def function(self, name: str) -> FunctionDef:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)
