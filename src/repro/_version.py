"""Single source of truth for the toolchain version and artifact schemas.

``__version__`` is what ``repro --version`` prints and what ``repro
bench`` stamps into its JSON report.  The schema constants version the
on-disk artifact formats independently of the package version: bump one
whenever the corresponding serialized form changes shape, and every
cache key derived from it changes with it (stale entries are simply
never looked up again — see :mod:`repro.session.keys`).
"""

__version__ = "1.4.0"

#: Format version of serialized IR modules (:mod:`repro.ir.serialize`).
IR_SCHEMA_VERSION = 1

#: Format version of serialized profiles — PSECs, ASMT, degradation
#: report, and run result (:mod:`repro.runtime.psec_json`).
PROFILE_SCHEMA_VERSION = 1

#: Format version of serialized register bytecode
#: (:mod:`repro.vm.bytecode`).  v2: tier-2 superinstructions — fused
#: cmp+branch / load+binop / binop+store / probe+access opcodes appear in
#: canonical code streams, so v1 artifacts must never be decoded as v2.
BYTECODE_SCHEMA_VERSION = 2

#: Layout version of the on-disk artifact store
#: (:mod:`repro.session.store`).
STORE_VERSION = 1

#: Format version of serialized static prescreen facts
#: (:mod:`repro.compiler.prescreen`).
PRESCREEN_SCHEMA_VERSION = 1

#: Format version of service request/response documents — the wire
#: format of the ``repro serve`` daemon and the envelope returned by
#: :class:`repro.service.core.ServiceCore` (:mod:`repro.service`).
SERVICE_SCHEMA_VERSION = 1

#: Format version of recommendation documents — the schema-versioned
#: JSON emitted by :mod:`repro.recommend` and cached as the session
#: ``recommend`` artifact kind.  Bump whenever the doc shape, the role
#: classifier contract, or a recommender's structured payload changes.
RECOMMEND_SCHEMA_VERSION = 1
