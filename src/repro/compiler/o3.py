"""Back-compat shim: the ``-O3`` analogue now lives in
:mod:`repro.compiler.opts`, next to the scalar pieces it composes (one
implementation, registered once in the pass registry as ``o3``)."""

from repro.compiler.opts import optimize_module_o3, optimize_o3

__all__ = ["optimize_module_o3", "optimize_o3"]
