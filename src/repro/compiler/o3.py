"""The conventional ``-O3`` analogue: full mem2reg + scalar opts + cleanup.

Running this on a function erases the variable↔IR mapping (promoted locals
no longer exist in memory), which is why CARMOT may only apply it to
functions that can never be on the callstack when an ROI starts (§4.4.5) —
and why the *baseline* build (the overhead denominator, "clang -O3") runs
it on everything.
"""

from __future__ import annotations

from repro.ir.module import Function, Module
from repro.compiler.mem2reg import promote_allocas
from repro.compiler.opts import optimize_function


def optimize_o3(function: Function) -> None:
    promote_allocas(function)
    optimize_function(function)
    function.conventionally_optimized = True


def optimize_module_o3(module: Module) -> None:
    for function in module.functions.values():
        optimize_o3(function)
