"""Top-level compilation driver: source text → runnable configurations.

Three build modes mirror the evaluation's three measurement subjects:

- **baseline** — the overhead denominator: conventional full optimization
  ("clang -O3"), no instrumentation;
- **naive**    — correct PSEC without any PSEC-specific optimization:
  unoptimized IR, a probe on every access, a Pin gate on every call, no
  callstack clustering;
- **carmot**   — the full pipeline of §4.4/§4.5 (individually toggleable
  for the Figure 8 breakdown).

All three are thin wrappers over :func:`compile_pipeline`: each mode is a
named pass pipeline run by the :class:`~repro.passes.manager.PassManager`
(``baseline`` → ``o3``; ``naive`` → ``naive-instrument``; ``carmot`` →
the seven-optimization sequence).  Custom pipelines — e.g. the CLI's
``--passes carmot,-pin-reduction`` — go through the same path.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.ir.lowering import lower_program
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.compiler.carmot import (
    CarmotBuildInfo,
    CarmotOptions,
    carmot_pass_names,
)
from repro.compiler.instrument import InstrumentationReport
from repro.passes.manager import (
    PassManager,
    PassTimingReport,
    PipelineContext,
)
from repro.passes.registry import parse_pipeline
from repro.resilience.budgets import ExecutionBudgets
from repro.runtime.config import (
    InstrumentationPolicy,
    RuntimeConfig,
    naive_policy_for,
    policy_for,
)
from repro.runtime.engine import CarmotHooks, CarmotRuntime
from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vm.interpreter import RunResult, run_module


class BuildMode(enum.Enum):
    BASELINE = "baseline"
    NAIVE = "naive"
    CARMOT = "carmot"


@dataclass
class CompiledProgram:
    """A compiled module plus everything needed to run and profile it."""

    module: Module
    mode: BuildMode
    policy: Optional[InstrumentationPolicy] = None
    options: Optional[CarmotOptions] = None
    build_info: Optional[CarmotBuildInfo] = None
    report: Optional[InstrumentationReport] = None
    pass_report: Optional[PassTimingReport] = None
    #: Lowered register bytecode, when a session attached a cached (or
    #: freshly keyed) artifact.  ``run`` lowers lazily when absent.
    bytecode: Optional[object] = None

    def make_runtime(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        **config_kwargs,
    ) -> Tuple[CarmotRuntime, CarmotHooks]:
        """A fresh runtime + hooks pair for one profiling run."""
        if self.mode is BuildMode.BASELINE:
            raise ValueError("baseline builds are not instrumented")
        is_carmot = self.mode is BuildMode.CARMOT
        clustering = (is_carmot and self.options is not None
                      and self.options.callstack_clustering)
        # The packed struct-of-arrays encoding is the CARMOT default (part
        # of the co-designed runtime); the naive profiler keeps the object
        # encoding, which also serves as the differential-testing oracle.
        config_kwargs.setdefault(
            "event_encoding", "packed" if is_carmot else "object"
        )
        config = RuntimeConfig(
            policy=self.policy,
            callstack_clustering=clustering,
            # The co-designed runtime (shadow callstacks + the §4.6
            # pipeline) belongs to CARMOT; the naive profiler walks the
            # stack per use and processes events inline.
            shadow_callstacks=is_carmot,
            inline_processing=not is_carmot,
            **config_kwargs,
        )
        runtime = CarmotRuntime(self.module, config)
        return runtime, CarmotHooks(runtime, cost_model)

    def run(
        self,
        entry: str = "main",
        args: Tuple = (),
        cost_model: CostModel = DEFAULT_COST_MODEL,
        max_instructions: int = 2_000_000_000,
        budgets: Optional[ExecutionBudgets] = None,
        vm: str = "bytecode",
        trace: bool = False,
        **config_kwargs,
    ):
        """Run the program; instrumented modes also return the runtime.

        ``budgets`` bounds the VM (steps/heap/recursion); ``vm`` selects
        the execution engine (``"bytecode"`` dispatch loop or the ``"ir"``
        tree-walk oracle); ``trace`` streams a per-opcode (bytecode) or
        per-instruction (IR walk) execution trace to stderr.  Runtime-layer
        resilience flows through ``config_kwargs`` (``resilience=...``,
        ``fault_plan=...``) into the :class:`RuntimeConfig`.
        """
        trace_stream = sys.stderr if trace else None
        if self.mode is BuildMode.BASELINE:
            result = run_module(self.module, entry, args,
                                cost_model=cost_model,
                                max_instructions=max_instructions,
                                budgets=budgets, vm=vm,
                                bytecode=self.bytecode,
                                trace_stream=trace_stream)
            return result, None
        runtime, hooks = self.make_runtime(cost_model, **config_kwargs)
        result = run_module(self.module, entry, args, hooks=hooks,
                            cost_model=cost_model,
                            max_instructions=max_instructions,
                            budgets=budgets, vm=vm,
                            bytecode=self.bytecode,
                            trace_stream=trace_stream)
        return result, runtime


def frontend(source: str, name: str = "program") -> Module:
    """Parse, type-check, lower, and verify MiniC source text."""
    module = lower_program(analyze(parse(source, name)), name)
    verify_module(module)
    return module


def _resolve_abstraction(module: Module,
                         abstraction: Optional[str]) -> Optional[str]:
    if abstraction is not None:
        return abstraction
    for roi in module.rois.values():
        if roi.abstraction is not None:
            return roi.abstraction
    return None


def compile_pipeline(
    source: str,
    pipeline: Union[str, Sequence[str]],
    abstraction: Optional[str] = None,
    options: Optional[CarmotOptions] = None,
    name: str = "program",
) -> CompiledProgram:
    """Compile with an explicit pass pipeline (text or list of names).

    The build mode follows from the instrumenter in the pipeline:
    ``naive-instrument`` → NAIVE, ``instrument`` → CARMOT, neither →
    BASELINE (uninstrumented).  ``options`` only feeds runtime knobs and
    build metadata — which passes run is decided by ``pipeline`` alone.
    """
    names = parse_pipeline(pipeline)
    module = frontend(source, name)
    if "naive-instrument" in names:
        mode = BuildMode.NAIVE
        policy: Optional[InstrumentationPolicy] = naive_policy_for(
            _resolve_abstraction(module, abstraction)
        )
    elif "instrument" in names:
        mode = BuildMode.CARMOT
        policy = policy_for(_resolve_abstraction(module, abstraction))
    else:
        mode = BuildMode.BASELINE
        policy = None
    info: Optional[CarmotBuildInfo] = None
    if mode is BuildMode.CARMOT:
        options = options or CarmotOptions()
        info = CarmotBuildInfo(options=options)
    ctx = PipelineContext(policy=policy, build_info=info)
    manager = PassManager(names, ctx)
    pass_report = manager.run(module)
    if info is not None:
        info.pass_report = pass_report
    verify_module(module)
    return CompiledProgram(
        module, mode, policy=policy,
        options=options if mode is BuildMode.CARMOT else None,
        build_info=info, report=ctx.instrument_report,
        pass_report=pass_report,
    )


def compile_baseline(source: str, name: str = "program") -> CompiledProgram:
    return compile_pipeline(source, "baseline", name=name)


def compile_naive(
    source: str,
    abstraction: Optional[str] = None,
    name: str = "program",
) -> CompiledProgram:
    return compile_pipeline(source, "naive", abstraction=abstraction,
                            name=name)


def compile_carmot(
    source: str,
    abstraction: Optional[str] = None,
    options: Optional[CarmotOptions] = None,
    name: str = "program",
    pipeline: Optional[Union[str, Sequence[str]]] = None,
) -> CompiledProgram:
    """Compile the full CARMOT build (or a custom ``pipeline`` override;
    by default the pipeline is derived from ``options``)."""
    options = options or CarmotOptions()
    if pipeline is None:
        pipeline = carmot_pass_names(options)
    return compile_pipeline(source, pipeline, abstraction=abstraction,
                            options=options, name=name)
