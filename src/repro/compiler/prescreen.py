"""Hybrid static+dynamic PSEC: the pre-screening pass.

PSEC is a *dynamic* characterization, but many PSEs of a loop-body ROI
have Set memberships that are already decidable at compile time: a
non-escaping scalar that is written before it is read on every
invocation lands in Output (+Cloneable from the second invocation on)
no matter what the data is.  The ``prescreen`` pass proves such verdicts
from the existing static analyses (dominators, loops + trip counts,
regions, the call graph) and then *strips the probes*: every access
site of a claimed PSE is suppressed, and a single ``probe.static`` per
ROI invocation replaces the whole event traffic.

The proof obligations are chosen so the hybrid result is **identical**
(at Sets level) to the fully-dynamic PSEC:

- the PSE must be a non-escaping local ``alloca`` whose address is used
  only as a ``load``/``store`` pointer (safe mode) or only through the
  canonical array-decay + induction-indexed ``addr.offset`` chain
  (aggressive mode) — so the claimed sites are provably *all* accesses;
- the ROI's function must not be transitively callable from inside any
  ROI region (no overlapping activation could observe the sites);
- a unique *first* site must dominate every other site, and execute on
  every invocation (it dominates the ROI ends, or sits in an inner loop
  with a provable ``>= 1`` trip count that runs on every invocation);
- the per-invocation access pattern must land in an FSA state closed
  under the remaining accesses, yielding one of three verdict shapes:

  ============================  =========  ============
  per-invocation pattern        1st inv.   steady state
  ============================  =========  ============
  write-first                   ``O``      ``CO``
  read-only                     ``I``      ``I``
  read-first, guaranteed write  ``IO``     ``TIO``
  ============================  =========  ============

Everything else stays dynamic.  Epoch boundaries (``roi.reset``) are
handled at runtime: ``probe.static`` executes once per invocation, the
runtime counts executions per epoch, and resolves ``once``/``steady``
letters per epoch exactly like the FSA's epoch-commit rule.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.lang import types as ct
from repro.ir.instructions import (
    AddrOffset,
    Alloca,
    BinOp,
    Instr,
    Load,
    ProbeStatic,
    Store,
)
from repro.ir.module import Block, Function, Module
from repro.ir.values import Const, Temp
from repro.analysis.loops import (
    Loop,
    innermost_loop_containing,
    match_trip_count,
)
from repro.analysis.mustaccess import pse_key_of_address
from repro.analysis.regions import RoiRegion
from repro.passes.manager import AnalysisManager, Pass, PipelineContext
from repro.passes.registry import register_pass
from repro._version import PRESCREEN_SCHEMA_VERSION

PRESCREEN_MODES = ("off", "safe", "aggressive")

#: The three provable verdict shapes: (first-invocation letters,
#: steady-state letters from the second invocation of an epoch on).
VERDICT_WRITE_FIRST = ("O", "CO")
VERDICT_READ_ONLY = ("I", "I")
VERDICT_READ_THEN_WRITE = ("IO", "TIO")


@dataclass(frozen=True)
class StaticFact:
    """One compile-time Set verdict, indexed by ``probe.static``.

    ``kind`` is ``"slot"`` (a scalar local: one ``("var", obj_id)`` PSE)
    or ``"elements"`` (an induction-walked array: ``count`` contiguous
    ``("mem", obj_id, offset, size)`` granules starting at ``start``
    bytes past the probed address, ``stride`` apart).
    """

    roi_id: int
    kind: str  # "slot" | "elements"
    pse: Tuple  # syntactic key, e.g. ("alloca", fn_name, temp_name)
    var_name: Optional[str]
    once_letters: str
    steady_letters: str
    size: int
    start: int = 0
    stride: int = 0
    count: int = 1
    sites: int = 0  # access sites stripped by this fact
    mode: str = "safe"

    def to_json(self) -> Dict:
        return {
            "roi": self.roi_id,
            "kind": self.kind,
            "pse": list(self.pse),
            "var": self.var_name,
            "once": self.once_letters,
            "steady": self.steady_letters,
            "size": self.size,
            "start": self.start,
            "stride": self.stride,
            "count": self.count,
            "sites": self.sites,
            "mode": self.mode,
        }

    @classmethod
    def from_json(cls, doc: Dict) -> "StaticFact":
        return cls(
            roi_id=doc["roi"],
            kind=doc["kind"],
            pse=tuple(doc["pse"]),
            var_name=doc.get("var"),
            once_letters=doc["once"],
            steady_letters=doc["steady"],
            size=doc["size"],
            start=doc.get("start", 0),
            stride=doc.get("stride", 0),
            count=doc.get("count", 1),
            sites=doc.get("sites", 0),
            mode=doc.get("mode", "safe"),
        )


@dataclass
class StaticFacts:
    """The sidecar the runtime consumes: all facts of one module."""

    mode: str = "safe"
    facts: List[StaticFact] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.facts)

    def to_json(self) -> Dict:
        return {
            "format": "repro-prescreen",
            "version": PRESCREEN_SCHEMA_VERSION,
            "mode": self.mode,
            "facts": [fact.to_json() for fact in self.facts],
        }

    @classmethod
    def from_json(cls, doc: Dict) -> "StaticFacts":
        if doc.get("format") != "repro-prescreen":
            raise ReproError("not a repro-prescreen document")
        if doc.get("version") != PRESCREEN_SCHEMA_VERSION:
            raise ReproError(
                f"prescreen schema version mismatch: artifact has "
                f"{doc.get('version')}, tool speaks "
                f"{PRESCREEN_SCHEMA_VERSION}"
            )
        return cls(
            mode=doc.get("mode", "safe"),
            facts=[StaticFact.from_json(f) for f in doc.get("facts", ())],
        )

    def serialize(self) -> str:
        """Canonical text payload (the session artifact format)."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def deserialize(cls, text: str) -> "StaticFacts":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise ReproError(f"corrupt prescreen artifact: {exc}") from None
        if not isinstance(doc, dict):
            raise ReproError("corrupt prescreen artifact: not an object")
        return cls.from_json(doc)

    def digest(self) -> str:
        return hashlib.sha256(self.serialize().encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Proof helpers
# ---------------------------------------------------------------------------


Site = Tuple[Block, int, Instr, bool]  # (block, index, instr, is_store)


def _dynamic_roi_functions(module: Module, callgraph, regions) -> Set[str]:
    """Functions that can execute inside some ROI's dynamic extent (the
    same closure opt 5's suppression half computes)."""
    from repro.ir.instructions import Call

    called_in_roi: Set[str] = set()
    for region in regions.values():
        for _, _, instr in region.instructions():
            if isinstance(instr, Call):
                target = instr.direct_target
                if target is None:
                    called_in_roi |= set(
                        callgraph.points_to.call_targets(
                            region.function.name, instr
                        )
                    )
                elif target in module.functions:
                    called_in_roi.add(target)
    return callgraph.transitive_callees(sorted(called_in_roi))


def _first_site(sites: Sequence[Site], dom) -> Optional[Site]:
    """The site that provably executes before every other site within an
    invocation, or None when no site dominates all others."""
    for cand in sites:
        cand_block, cand_index = cand[0], cand[1]
        first = True
        for other in sites:
            if other is cand:
                continue
            if other[0] is cand_block:
                if other[1] < cand_index:
                    first = False
                    break
            elif not dom.dominates(cand_block, other[0]):
                first = False
                break
        if first:
            return cand
    return None


def _executes_every_invocation(
    function: Function,
    region: RoiRegion,
    loops: List[Loop],
    dom,
    site_block: Block,
    end_blocks: List[Block],
) -> bool:
    """Does an instruction in ``site_block`` run on every ROI invocation?

    Either its block dominates every ROI end site, or it sits in an
    inner loop that provably runs ``>= 1`` iterations on every
    invocation and executes the block on every iteration."""
    if all(dom.dominates(site_block, end) for end in end_blocks):
        return True
    loop = innermost_loop_containing(loops, site_block)
    if loop is None or loop.preheader is None:
        return False
    if not loop.blocks <= region.blocks:
        return False
    if loop.preheader not in region.blocks:
        return False
    if not all(dom.dominates(loop.preheader, end) for end in end_blocks):
        return False
    trip = match_trip_count(function, loop, None)
    if trip is None or trip.constant_trips is None or trip.constant_trips < 1:
        return False
    return all(dom.dominates(site_block, latch) for latch in loop.latches)


def _classify_sites(
    sites: Sequence[Site],
    guaranteed,
    dom,
) -> Optional[Tuple[str, str]]:
    """Map a site set to one of the three verdict shapes, or None.

    ``guaranteed(block)`` must answer "does this block execute on every
    invocation".  The first site must be guaranteed so every invocation
    produces at least one (fresh) access; the FSA state after it must be
    closed under the remaining sites' (non-fresh) accesses."""
    first = _first_site(sites, dom)
    if first is None:
        return None
    if not guaranteed(first[0]):
        return None
    stores = [site for site in sites if site[3]]
    if first[3]:
        # Wf lands in O; O (and CO from the 2nd invocation) are closed
        # under any subsequent same-invocation access.
        return VERDICT_WRITE_FIRST
    if not stores:
        # Rf lands in I; I is closed under Rn only.
        return VERDICT_READ_ONLY
    if any(guaranteed(store[0]) for store in stores):
        # Rf -> I, guaranteed Wn -> IO; IO is closed, and the next
        # epoch-fresh read moves IO -> TIO (absorbing).
        return VERDICT_READ_THEN_WRITE
    # Read-first with only conditional writes: the first-invocation
    # letters depend on whether a write happened -- not provable.
    return None


def _slot_escapes(function: Function, temp: Temp) -> bool:
    """Is the alloca address used anywhere except as a load/store ptr?"""
    for block in function.blocks:
        for instr in block.instrs:
            if isinstance(instr, Alloca) and instr.result is temp:
                continue
            for value in instr.operands():
                if not (isinstance(value, Temp) and value.name == temp.name):
                    continue
                if isinstance(instr, Load) and instr.ptr is value:
                    continue
                if isinstance(instr, Store) and instr.ptr is value \
                        and instr.value is not value:
                    continue
                return True
    return False


def _overlaps_other_region(
    sites: Sequence[Site], regions, roi_id: int, function: Function
) -> bool:
    others = [
        region for other_id, region in regions.items()
        if other_id != roi_id and region.function is function
    ]
    for block, index, _, _ in sites:
        if any(region.contains(block, index) for region in others):
            return True
    return False


def _access_size_of(instr) -> int:
    if isinstance(instr, Load):
        return 1 if isinstance(instr.result.ty, ct.CharType) else 8
    pointee = (instr.ptr.ty.pointee
               if isinstance(instr.ptr.ty, ct.PointerType)
               else instr.value.ty)
    return 1 if isinstance(pointee, ct.CharType) else 8


# ---------------------------------------------------------------------------
# Aggressive mode: induction-walked array elements
# ---------------------------------------------------------------------------


def _unit_step(function: Function, loop: Loop, trip) -> bool:
    """Verify the canonical ``++i`` latch: exactly one in-loop store to
    the induction slot, of ``load(slot) + 1``."""
    slot = trip.induction_alloca
    stores = [
        instr
        for block in loop.blocks
        for instr in block.instrs
        if isinstance(instr, Store) and instr.ptr is slot
    ]
    if len(stores) != 1:
        return False
    value = stores[0].value
    if not isinstance(value, Temp):
        return False
    defn = None
    for block in loop.blocks:
        for instr in block.instrs:
            if getattr(instr, "result", None) is value:
                defn = instr
    if not isinstance(defn, BinOp) or defn.op != "add":
        return False
    if isinstance(defn.rhs, Const) and defn.rhs.value == 1:
        source = defn.lhs
    elif isinstance(defn.lhs, Const) and defn.lhs.value == 1:
        source = defn.rhs
    else:
        return False
    if not isinstance(source, Temp):
        return False
    for block in loop.blocks:
        for instr in block.instrs:
            if getattr(instr, "result", None) is source:
                return isinstance(instr, Load) and instr.ptr is slot
    return False


@dataclass
class _AddrRep:
    """Shape of an address temp derived from an array alloca: a constant
    byte offset plus at most one induction term (``i * scale``)."""

    const: int = 0
    scale: Optional[int] = None  # None: no induction term
    index_pos: Optional[Tuple[Block, int]] = None  # defining load's site
    unknown: bool = False


def _array_candidates(function: Function) -> List[Alloca]:
    return [
        instr for instr in function.entry.instrs
        if isinstance(instr, Alloca) and instr.var is not None
        and isinstance(instr.allocated_type, ct.ArrayType)
    ]


def _element_fact_for(
    function: Function,
    region: RoiRegion,
    regions,
    roi_id: int,
    loop: Loop,
    trip,
    dom,
    alloca: Alloca,
    induction_loads: Dict[str, Tuple[Block, int]],
) -> Optional[Tuple[Tuple[str, str], List[Site], int, int]]:
    """Try to prove an elements verdict for ``alloca`` walked by ``loop``.

    Returns (verdict, in-region sites, element size, start offset), or
    None.  The address-chain walk covers the whole function: any use of
    the array address outside the load/store-pointer role rejects (the
    address may not escape), while out-of-region accesses of any shape
    are allowed (they execute outside the ROI's dynamic extent)."""
    root = alloca.result
    reps: Dict[str, _AddrRep] = {}
    positions: Dict[str, Tuple[Block, int]] = {}
    for block in function.blocks:
        for index, instr in enumerate(block.instrs):
            if not isinstance(instr, AddrOffset):
                continue
            base = instr.base
            if isinstance(base, Temp) and base.name == root.name:
                base_rep = _AddrRep()
            elif isinstance(base, Temp) and base.name in reps:
                base_rep = reps[base.name]
            else:
                continue
            rep = _AddrRep(base_rep.const, base_rep.scale,
                           base_rep.index_pos, base_rep.unknown)
            rep.const += instr.offset
            if isinstance(instr.index, Const):
                rep.const += instr.index.value * instr.scale
            elif (isinstance(instr.index, Temp)
                    and instr.index.name in induction_loads
                    and rep.scale is None):
                rep.scale = instr.scale
                rep.index_pos = induction_loads[instr.index.name]
            elif instr.scale != 0 or not isinstance(instr.index, Const):
                rep.unknown = True
            reps[instr.result.name] = rep
            positions[instr.result.name] = (block, index)

    # Escape check: the root and every derived address temp may appear
    # only as addr.offset base or load/store pointer.
    tracked = {root.name} | set(reps)
    for block in function.blocks:
        for instr in block.instrs:
            for value in instr.operands():
                if not (isinstance(value, Temp) and value.name in tracked):
                    continue
                if isinstance(instr, AddrOffset) and instr.base is value:
                    continue
                if isinstance(instr, Load) and instr.ptr is value:
                    continue
                if isinstance(instr, Store) and instr.ptr is value \
                        and instr.value is not value:
                    continue
                return None

    sites: List[Site] = []
    size: Optional[int] = None
    for block, index, instr in region.instructions():
        if not isinstance(instr, (Load, Store)):
            continue
        ptr = instr.ptr
        if not (isinstance(ptr, Temp) and ptr.name in reps):
            continue
        rep = reps[ptr.name]
        access = _access_size_of(instr)
        if rep.unknown or rep.scale is None or rep.const != 0:
            return None
        if rep.scale != access:
            return None
        if size is None:
            size = access
        elif size != access:
            return None
        if block not in loop.blocks:
            return None
        if not all(dom.dominates(block, latch) for latch in loop.latches):
            return None
        # The index load must execute (afresh) before the access on
        # every iteration.
        load_block, load_index = rep.index_pos
        addro_block, addro_index = positions[ptr.name]
        if load_block is addro_block:
            if load_index >= addro_index:
                return None
        elif not dom.dominates(load_block, addro_block):
            return None
        if not all(dom.dominates(load_block, latch)
                   for latch in loop.latches):
            return None
        sites.append((block, index, instr, isinstance(instr, Store)))
    if not sites or size is None:
        return None
    if _overlaps_other_region(sites, regions, roi_id, function):
        return None
    # All sites run on every iteration of a >=1-trip loop, so every
    # store is guaranteed; classification needs only first-site order.
    verdict = _classify_sites(sites, lambda block: True, dom)
    if verdict is None:
        return None
    return verdict, sites, size, trip.start * size


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


@register_pass
class PrescreenPass(Pass):
    """Prove Set verdicts at compile time and strip the probes.

    A planning pass: fills ``plan.suppressed``/``plan.static_suppressed``
    and ``plan.insertions`` (one ``probe.static`` per fact, anchored
    right after the ROI's ``roi.begin``), publishes the facts on
    ``module.static_facts``, and records claimed syntactic PSE keys in
    ``ctx.handled`` so opts 1 and 3 skip them."""

    name = "prescreen"

    def run(self, module: Module, am: AnalysisManager,
            ctx: PipelineContext) -> bool:
        plan = ctx.ensure_plan()
        mode = self._mode(ctx)
        counts = {"slot_facts": 0, "element_facts": 0, "sites_stripped": 0,
                  "rejected": 0}
        facts = StaticFacts(mode=mode)
        if plan.policy.track_sets:
            regions = am.get("roi-regions")
            callgraph = am.get("callgraph")
            dynamic_roi_fns = _dynamic_roi_functions(module, callgraph,
                                                     regions)
            for roi_id in sorted(regions):
                region = regions[roi_id]
                roi = module.rois[roi_id]
                if not roi.is_loop_body:
                    continue
                if region.function.name in dynamic_roi_fns:
                    continue
                self._screen_region(module, am, plan, ctx, region, roi_id,
                                    mode, facts, regions, counts)
        module.static_facts = facts if facts.facts else None
        counts["mode"] = mode
        for key, value in sorted(counts.items()):
            am.annotate(key, value)
        if ctx.build_info is not None and hasattr(ctx.build_info,
                                                  "static_facts"):
            ctx.build_info.static_facts = module.static_facts
        return False

    @staticmethod
    def _mode(ctx: PipelineContext) -> str:
        options = getattr(ctx.build_info, "options", None)
        mode = getattr(options, "prescreen", "safe")
        if mode not in ("safe", "aggressive"):
            # Pass named in pipeline text without a carrier option:
            # default to the conservative tier.
            mode = "safe"
        return mode

    def _screen_region(self, module, am, plan, ctx, region, roi_id, mode,
                       facts, regions, counts) -> None:
        function = region.function
        dom = am.get("dominators", function)
        loops = am.get("loops", function)
        end_blocks = [block for block, _ in region.end_sites]
        anchor = region.begin_block.instrs[region.begin_index + 1]
        handled = ctx.handled.setdefault(roi_id, set())

        def claim(fact: StaticFact, sites: List[Site], addr) -> None:
            probe = ProbeStatic(ptr=addr, roi_id=roi_id,
                                fact_index=len(facts.facts))
            plan.insertions.setdefault(id(anchor), []).append(probe)
            for _, _, instr, _ in sites:
                plan.suppressed.add(id(instr))
                plan.static_suppressed.add(id(instr))
            facts.facts.append(fact)
            counts["sites_stripped"] += len(sites)

        # -- safe tier: non-escaping scalar slots -------------------------
        grouped: Dict[Tuple, List[Site]] = {}
        for block, index, instr in region.instructions():
            if not isinstance(instr, (Load, Store)):
                continue
            key = pse_key_of_address(function, instr.ptr)
            if key is None or key[0] != "alloca":
                continue
            grouped.setdefault(key, []).append(
                (block, index, instr, isinstance(instr, Store))
            )
        for key in sorted(grouped):
            sites = grouped[key]
            verdict = self._slot_verdict(function, region, regions, roi_id,
                                         loops, dom, end_blocks, key, sites)
            if verdict is None:
                counts["rejected"] += 1
                continue
            instr = sites[0][2]
            fact = StaticFact(
                roi_id=roi_id,
                kind="slot",
                pse=key,
                var_name=instr.var.name if instr.var else None,
                once_letters=verdict[0],
                steady_letters=verdict[1],
                size=_access_size_of(instr),
                sites=len(sites),
                mode="safe",
            )
            claim(fact, sites, instr.ptr)
            handled.add(key)
            counts["slot_facts"] += 1

        # -- aggressive tier: induction-walked array elements -------------
        if mode != "aggressive":
            return
        for loop in loops:
            if not loop.blocks <= region.blocks:
                continue
            if loop.preheader is None or loop.preheader not in region.blocks:
                continue
            if not all(dom.dominates(loop.preheader, end)
                       for end in end_blocks):
                continue
            trip = match_trip_count(function, loop, None)
            if (trip is None or trip.constant_trips is None
                    or trip.constant_trips < 1):
                continue
            if not _unit_step(function, loop, trip):
                continue
            induction_loads = {
                instr.result.name: (block, index)
                for block in loop.blocks
                for index, instr in enumerate(block.instrs)
                if isinstance(instr, Load)
                and instr.ptr is trip.induction_alloca
            }
            for alloca in _array_candidates(function):
                found = _element_fact_for(
                    function, region, regions, roi_id, loop, trip, dom,
                    alloca, induction_loads,
                )
                if found is None:
                    counts["rejected"] += 1
                    continue
                verdict, sites, size, start = found
                if any(id(instr) in plan.suppressed
                       for _, _, instr, _ in sites):
                    continue  # already claimed (e.g. by another loop)
                fact = StaticFact(
                    roi_id=roi_id,
                    kind="elements",
                    pse=("alloca", function.name, alloca.result.name),
                    var_name=alloca.var.name if alloca.var else None,
                    once_letters=verdict[0],
                    steady_letters=verdict[1],
                    size=size,
                    start=start,
                    stride=size,
                    count=trip.constant_trips,
                    sites=len(sites),
                    mode="aggressive",
                )
                claim(fact, sites, alloca.result)
                counts["element_facts"] += 1

    def _slot_verdict(self, function, region, regions, roi_id, loops, dom,
                      end_blocks, key, sites) -> Optional[Tuple[str, str]]:
        # Every site must carry a source variable: a var-annotated
        # single-word access is what makes the dynamic side use the
        # ("var", obj_id) key this fact claims.
        if any(instr.var is None for _, _, instr, _ in sites):
            return None
        sizes = {_access_size_of(instr) for _, _, instr, _ in sites}
        if len(sizes) != 1:
            return None
        temp = sites[0][2].ptr
        if not isinstance(temp, Temp):
            return None
        if _slot_escapes(function, temp):
            return None
        if _overlaps_other_region(sites, regions, roi_id, function):
            return None

        def guaranteed(block: Block) -> bool:
            return _executes_every_invocation(function, region, loops, dom,
                                              block, end_blocks)

        return _classify_sites(sites, guaranteed, dom)
