"""Probe insertion.

The instrumenter turns a lowered module into a *profiling* module by
inserting ``probe.*`` instructions around memory operations and setting Pin
gates on calls.  What gets inserted is controlled by an
:class:`InstrumentationPlan`:

- the **naive** plan (``InstrumentationPlan.naive``) probes every load and
  store, gates every call (it cannot guarantee anything about callees), and
  tracks every event class the abstraction's policy asks for — this is the
  no-PSEC-specific-optimization baseline of Figures 7/10/11;
- the **CARMOT** plan is produced by :mod:`repro.compiler.carmot`, which
  fills the suppression/insertion tables using the analyses of §4.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import builtins_spec
from repro.lang import types as ct
from repro.ir.instructions import (
    AccessKind,
    Alloca,
    Call,
    Instr,
    Load,
    ProbeAccess,
    ProbeClassify,
    ProbeStatic,
    Store,
    ProbeEscape,
)
from repro.ir.module import Block, Function, Module
from repro.ir.values import Temp
from repro.errors import ReproError
from repro.passes.manager import Pass, register_analysis
from repro.passes.registry import register_pass
from repro.runtime.config import InstrumentationPolicy


@dataclass
class InstrumentationPlan:
    """Decisions feeding :func:`instrument_module`.

    ``suppressed`` holds ids of Load/Store instructions whose access probe
    is redundant (opts 1–3); ``insertions`` maps an *anchor* instruction id
    to probes spliced in immediately before that instruction (opts 2–3
    hoisted probes — anchors survive the block rewrites of mem2reg);
    ``pin_cleared`` holds ids of Call instructions whose Pin gate is safe
    to drop (opt 6).  ``static_suppressed`` is the subset of
    ``suppressed`` claimed by prescreen static facts (reported
    separately so Figure-8-style breakdowns can attribute the saving).
    """

    policy: InstrumentationPolicy
    suppressed: Set[int] = field(default_factory=set)
    static_suppressed: Set[int] = field(default_factory=set)
    escape_suppressed: Set[int] = field(default_factory=set)
    insertions: Dict[int, List[Instr]] = field(default_factory=dict)
    pin_cleared: Set[int] = field(default_factory=set)
    gate_all_calls: bool = True

    @classmethod
    def naive(cls, policy: InstrumentationPolicy) -> "InstrumentationPlan":
        return cls(policy=policy, gate_all_calls=True)


@dataclass
class InstrumentationReport:
    """What the instrumenter did — consumed by tests and Figure 8."""

    access_probes: int = 0
    escape_probes: int = 0
    classify_probes: int = 0
    static_probes: int = 0
    suppressed_probes: int = 0
    #: Subset of ``suppressed_probes`` stripped by prescreen static facts.
    static_suppressed_probes: int = 0
    pin_gates: int = 0
    pin_gates_cleared: int = 0


def _compiler_temp_slots(function: Function) -> Set[str]:
    """Alloca temps without source variables (short-circuit/ternary slots).

    These are lowering artifacts, not PSEs; neither naive nor CARMOT
    profiles them (clang would have kept them in registers)."""
    return {
        instr.result.name
        for instr in function.entry.instrs
        if isinstance(instr, Alloca) and instr.var is None
    }


def _access_size(ty: ct.Type) -> int:
    return 1 if isinstance(ty, ct.CharType) else 8


def instrument_module(
    module: Module,
    plan: InstrumentationPlan,
) -> InstrumentationReport:
    """Insert probes and set Pin gates, in place."""
    report = InstrumentationReport()
    for function in module.functions.values():
        _instrument_function(function, plan, report)
    return report


def _instrument_function(
    function: Function,
    plan: InstrumentationPlan,
    report: InstrumentationReport,
) -> None:
    policy = plan.policy
    temp_slots = _compiler_temp_slots(function)
    for block in function.blocks:
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            for hoisted in plan.insertions.get(id(instr), ()):
                new_instrs.append(hoisted)
                if isinstance(hoisted, ProbeClassify):
                    report.classify_probes += 1
                elif isinstance(hoisted, ProbeAccess):
                    report.access_probes += 1
                elif isinstance(hoisted, ProbeStatic):
                    report.static_probes += 1
            probe = _probe_for(instr, policy, temp_slots, plan, report)
            if probe is not None:
                new_instrs.append(probe)
            escape = _escape_for(instr, policy, temp_slots)
            if escape is not None and id(instr) in plan.escape_suppressed:
                escape = None
            if escape is not None:
                new_instrs.append(escape)
                report.escape_probes += 1
            if isinstance(instr, Call):
                _gate_call(instr, plan, report)
            new_instrs.append(instr)
        block.instrs = new_instrs


def _probe_for(instr, policy, temp_slots, plan, report) -> Optional[ProbeAccess]:
    if not policy.track_sets:
        return None
    if isinstance(instr, Load):
        if isinstance(instr.ptr, Temp) and instr.ptr.name in temp_slots:
            return None
        if id(instr) in plan.suppressed:
            report.suppressed_probes += 1
            if id(instr) in plan.static_suppressed:
                report.static_suppressed_probes += 1
            return None
        report.access_probes += 1
        return ProbeAccess(
            AccessKind.READ, instr.ptr, _access_size(instr.result.ty),
            instr.var, instr.loc,
        )
    if isinstance(instr, Store):
        if isinstance(instr.ptr, Temp) and instr.ptr.name in temp_slots:
            return None
        if id(instr) in plan.suppressed:
            report.suppressed_probes += 1
            if id(instr) in plan.static_suppressed:
                report.static_suppressed_probes += 1
            return None
        pointee = (instr.ptr.ty.pointee
                   if isinstance(instr.ptr.ty, ct.PointerType)
                   else instr.value.ty)
        report.access_probes += 1
        return ProbeAccess(
            AccessKind.WRITE, instr.ptr, _access_size(pointee),
            instr.var, instr.loc,
        )
    return None


def _escape_for(instr, policy, temp_slots) -> Optional[ProbeEscape]:
    if not policy.track_reachability:
        return None
    if not isinstance(instr, Store):
        return None
    if isinstance(instr.ptr, Temp) and instr.ptr.name in temp_slots:
        return None
    if not isinstance(instr.value.ty, ct.PointerType):
        return None
    return ProbeEscape(instr.value, instr.ptr, instr.loc)


def _gate_call(instr: Call, plan: InstrumentationPlan,
               report: InstrumentationReport) -> None:
    if id(instr) in plan.pin_cleared:
        instr.pin_gated = False
        report.pin_gates_cleared += 1
        return
    if plan.gate_all_calls:
        instr.pin_gated = True
        report.pin_gates += 1


# ---------------------------------------------------------------------------
# Call-site table (compile-time interning for the packed event encoding)
# ---------------------------------------------------------------------------


@dataclass
class SiteTable:
    """Dense ids for the distinct (var, loc) pairs probes report.

    Computed by the ``site-table`` analysis *after* probe insertion; the
    instrument passes call :meth:`apply` to stamp each probe with its id
    and publish the decode list on ``module.site_table``.  The packed
    runtime encoding seeds its intern tables from that list, so the hot
    path records a precomputed int instead of interning (var, loc) per
    event.
    """

    sites: List[Tuple[Optional[object], Optional[object]]] = field(
        default_factory=list
    )
    ids_by_probe: Dict[int, int] = field(default_factory=dict)

    def apply(self, module: Module) -> None:
        for function in module.functions.values():
            for block in function.blocks:
                for instr in block.instrs:
                    if isinstance(instr, (ProbeAccess, ProbeClassify)):
                        instr.site_id = self.ids_by_probe[id(instr)]
        module.site_table = list(self.sites)


@register_analysis("site-table", "module")
def _compute_site_table(am, module: Module) -> SiteTable:
    table = SiteTable()
    dedup: Dict[Tuple, int] = {}
    for function in module.functions.values():
        for block in function.blocks:
            for instr in block.instrs:
                if not isinstance(instr, (ProbeAccess, ProbeClassify)):
                    continue
                key = (
                    instr.var.uid if instr.var is not None else None,
                    instr.loc,
                )
                site_id = dedup.get(key)
                if site_id is None:
                    site_id = len(table.sites)
                    dedup[key] = site_id
                    table.sites.append((instr.var, instr.loc))
                table.ids_by_probe[id(instr)] = site_id
    return table


# ---------------------------------------------------------------------------
# Registered passes
# ---------------------------------------------------------------------------


@register_pass
class InstrumentPass(Pass):
    """Materialize the pipeline's accumulated plan into probe IR.

    With no planning passes ahead of it the plan is empty, so this gates
    every call and probes every access under the context's policy."""

    name = "instrument"
    mutates_ir = True

    def run(self, module, am, ctx) -> bool:
        report = instrument_module(module, ctx.ensure_plan())
        ctx.instrument_report = report
        if ctx.build_info is not None:
            ctx.build_info.report = report
        am.get("site-table").apply(module)
        return True


@register_pass
class NaiveInstrumentPass(Pass):
    """The no-PSEC-specific-optimization instrumenter of Figures 7/10/11:
    probe every access, gate every call, ignore any accumulated plan."""

    name = "naive-instrument"
    mutates_ir = True

    def run(self, module, am, ctx) -> bool:
        if ctx.policy is None:
            raise ReproError("naive-instrument needs an instrumentation "
                             "policy in the pipeline context")
        ctx.plan = InstrumentationPlan.naive(ctx.policy)
        report = instrument_module(module, ctx.plan)
        ctx.instrument_report = report
        if ctx.build_info is not None:
            ctx.build_info.report = report
        am.get("site-table").apply(module)
        return True
