"""The CARMOT optimizations: PSEC-specific passes 1–7 (§4.4–4.5).

Each optimization is a registered pass over the shared
:class:`~repro.passes.manager.AnalysisManager`; the default pipeline
(``carmot_pass_names``, alias ``"carmot"``) runs them in the paper's
order on a freshly-lowered module:

1. ``callgraph-o3`` — **opt 5** (call graph): functions that can never be
   on the callstack when an ROI starts get the full conventional ``-O3``
   treatment;
2. ``selective-mem2reg`` — **opt 4**: in the remaining ("tagged")
   functions, promote locals never used in any ROI, plus the ROI loops'
   governing induction variables (which the pragma generator privatizes
   implicitly);
3. ``fixed-classification`` — **opt 3** (fixed FSA states):
   loop-invariant scalar loads → hoisted ``classify I``; never-read
   stores → hoisted ``classify O`` (+``C`` when the store provably
   executes in ≥2 invocations);
4. ``aggregation`` — **opt 2** (PSE aggregation): single-site,
   induction-indexed contiguous accesses inside the ROI collapse to one
   ranged probe per invocation;
5. ``subsequent-accesses`` — **opt 1**: must-already-accessed data-flow
   marks redundant probes;
6. ``pin-reduction`` — **opt 6**: clear gates on calls that provably
   never reach precompiled code that touches program memory;
7. ``out-of-roi-suppression`` — the second half of **opt 5**: accesses
   statically outside every ROI that cannot execute in an ROI's dynamic
   extent need no probes at all;
8. ``instrument`` — materialize the plan; **opt 7** (callstack
   clustering) is a runtime knob carried in the result.

Every optimization can be toggled independently — by
:class:`CarmotOptions` field or by pipeline text
(``"carmot,-pin-reduction"``) — which is exactly how Figure 8 measures
the per-optimization contribution.  Passes 3–7 are *planning* passes:
they only fill the shared :class:`InstrumentationPlan`, leaving the IR
(and therefore the analysis cache) untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import builtins_spec
from repro.lang import types as ct
from repro.ir.instructions import (
    AccessKind,
    AddrOffset,
    Alloca,
    Call,
    Instr,
    Load,
    ProbeAccess,
    ProbeClassify,
    Store,
)
from repro.ir.module import Function, Module, RoiInfo
from repro.ir.values import Const, FunctionRef, GlobalRef, Temp, Value
from repro.analysis.loops import (
    Loop,
    innermost_loop_containing,
    match_trip_count,
)
from repro.analysis.mustaccess import pse_key_of_address
from repro.analysis.regions import RoiRegion
from repro.compiler.instrument import InstrumentationReport
from repro.compiler.mem2reg import promotable_allocas, promote_allocas
from repro.compiler.opts import optimize_o3
from repro.passes.manager import (
    AnalysisManager,
    Pass,
    PassManager,
    PassTimingReport,
    PipelineContext,
)
from repro.passes.registry import register_alias, register_pass
from repro.runtime.config import InstrumentationPolicy, RuntimeConfig


@dataclass
class CarmotOptions:
    """Per-optimization toggles (all on = full CARMOT)."""

    subsequent_accesses: bool = True      # opt 1
    aggregation: bool = True              # opt 2
    fixed_classification: bool = True     # opt 3
    selective_mem2reg: bool = True        # opt 4
    callgraph_o3: bool = True             # opt 5
    reduce_pin: bool = True               # opt 6
    callstack_clustering: bool = True     # opt 7 (runtime knob)
    #: Hybrid static+dynamic pre-screening: "off" (fully dynamic PSEC,
    #: the paper's default), "safe" (non-escaping scalar slots), or
    #: "aggressive" (safe + induction-walked array elements).
    prescreen: str = "off"

    @classmethod
    def none(cls) -> "CarmotOptions":
        return cls(False, False, False, False, False, False, False)


@dataclass
class CarmotBuildInfo:
    """Metadata about one CARMOT compilation, for tests and Figure 8."""

    options: CarmotOptions
    o3_functions: List[str] = field(default_factory=list)
    promoted_locals: int = 0
    report: Optional[InstrumentationReport] = None
    pass_report: Optional[PassTimingReport] = None
    #: Prescreen sidecar (``repro.compiler.prescreen.StaticFacts``), when
    #: the prescreen pass ran and proved at least one verdict.
    static_facts: Optional[object] = None


#: Which pass names each :class:`CarmotOptions` toggle controls (opt 7 is
#: a runtime knob and maps to no pass).
OPTION_PASSES: Dict[str, Tuple[str, ...]] = {
    "subsequent_accesses": ("subsequent-accesses",),
    "aggregation": ("aggregation",),
    "fixed_classification": ("fixed-classification",),
    "selective_mem2reg": ("selective-mem2reg",),
    "callgraph_o3": ("callgraph-o3", "out-of-roi-suppression"),
    "reduce_pin": ("pin-reduction",),
    "callstack_clustering": (),
    "prescreen": ("prescreen",),
}


def carmot_pass_names(options: Optional[CarmotOptions] = None) -> List[str]:
    """The CARMOT pipeline for the given toggles, as registry names."""
    options = options or CarmotOptions()
    names: List[str] = []
    if options.callgraph_o3:
        names.append("callgraph-o3")
    if options.selective_mem2reg:
        names.append("selective-mem2reg")
    if options.prescreen != "off":
        # Before opts 3/2/1: statically-claimed PSEs are recorded in the
        # pipeline context so the dynamic planners skip them.
        names.append("prescreen")
    if options.fixed_classification:
        names.append("fixed-classification")
    if options.aggregation:
        names.append("aggregation")
    if options.subsequent_accesses:
        names.append("subsequent-accesses")
    if options.reduce_pin:
        names.append("pin-reduction")
    if options.callgraph_o3:
        names.append("out-of-roi-suppression")
    names.append("instrument")
    return names


def apply_carmot(
    module: Module,
    policy: InstrumentationPolicy,
    options: Optional[CarmotOptions] = None,
) -> CarmotBuildInfo:
    """Run the CARMOT pipeline on a lowered module, in place."""
    options = options or CarmotOptions()
    info = CarmotBuildInfo(options=options)
    ctx = PipelineContext(policy=policy, build_info=info)
    manager = PassManager(carmot_pass_names(options), ctx)
    info.pass_report = manager.run(module)
    return info


# ---------------------------------------------------------------------------
# Opt 5 (first half): conventional optimization of ROI-free functions
# ---------------------------------------------------------------------------


@register_pass
class CallgraphO3Pass(Pass):
    """-O3 for functions provably never on the callstack at ROI start."""

    name = "callgraph-o3"
    mutates_ir = True

    def run(self, module: Module, am: AnalysisManager,
            ctx: PipelineContext) -> bool:
        tagged = am.get("roi-tagged-functions")
        changed = False
        for function in module.functions.values():
            if function.name not in tagged:
                optimize_o3(function)
                if ctx.build_info is not None:
                    ctx.build_info.o3_functions.append(function.name)
                changed = True
        return changed


# ---------------------------------------------------------------------------
# Opt 4: selective mem2reg inside tagged functions
# ---------------------------------------------------------------------------


@register_pass
class SelectiveMem2RegPass(Pass):
    """Promote locals never used in any ROI + ROI induction variables."""

    name = "selective-mem2reg"
    mutates_ir = True

    def run(self, module: Module, am: AnalysisManager,
            ctx: PipelineContext) -> bool:
        tagged = am.get("roi-tagged-functions")
        regions = am.get("roi-regions")
        regions_by_fn: Dict[str, List[RoiRegion]] = {}
        for region in regions.values():
            regions_by_fn.setdefault(region.function.name, []).append(region)
        induction_uids: Dict[str, Set[int]] = {}
        for roi in module.rois.values():
            if roi.induction_var is not None:
                induction_uids.setdefault(roi.function, set()).add(
                    roi.induction_var.uid
                )
        promoted = 0
        for function in module.functions.values():
            if (function.name not in tagged
                    or function.conventionally_optimized):
                continue
            used_in_roi: Set[str] = set()
            for region in regions_by_fn.get(function.name, ()):
                for _, _, instr in region.instructions():
                    if isinstance(instr, (Load, Store)) and isinstance(
                        instr.ptr, Temp
                    ):
                        used_in_roi.add(instr.ptr.name)
            inductions = induction_uids.get(function.name, set())
            chosen: List[Alloca] = []
            for alloca in promotable_allocas(function):
                is_induction = (alloca.var is not None
                                and alloca.var.uid in inductions)
                if alloca.result.name not in used_in_roi or is_induction:
                    chosen.append(alloca)
            promoted += promote_allocas(function, chosen)
        if ctx.build_info is not None:
            ctx.build_info.promoted_locals = promoted
        return promoted > 0


# ---------------------------------------------------------------------------
# Opts 3 + 2: fixed classification (scalars) and aggregation (arrays)
# ---------------------------------------------------------------------------


def _roi_loop_anchor(
    am: AnalysisManager, module: Module, region: RoiRegion
) -> Optional[Tuple[Loop, Instr]]:
    """For a loop-body ROI: its loop and the preheader terminator that
    hoisted probes anchor to.  None when the shape is not recognisable."""
    function = region.function
    loops = am.get("loops", function)
    loop = innermost_loop_containing(loops, region.begin_block)
    if loop is None or loop.preheader is None:
        return None
    anchor = loop.preheader.terminator
    if anchor is None:
        return None
    return loop, anchor


@register_pass
class FixedClassificationPass(Pass):
    """Opt 3: hoist provably-fixed FSA states out of the ROI loop.

    Loop-invariant scalar loads become one ``classify I`` per invocation;
    never-read stores become ``classify O`` (+``C`` when the store
    provably executes in ≥2 invocations).  Handled PSE keys are recorded
    in the pipeline context so opt 1 skips them."""

    name = "fixed-classification"

    def run(self, module: Module, am: AnalysisManager,
            ctx: PipelineContext) -> bool:
        plan = ctx.ensure_plan()
        for roi_id, region in am.get("roi-regions").items():
            roi = module.rois[roi_id]
            if not roi.is_loop_body:
                continue
            found = _roi_loop_anchor(am, module, region)
            if found is None:
                continue
            loop, anchor = found
            function = region.function
            dom = am.get("dominators", function)
            deps = am.get("memory-deps", function, region)
            handled = ctx.handled.setdefault(roi_id, set())
            accesses = _group_region_accesses(function, region)
            multi_trip = _provably_multi_trip(function, loop, roi)
            for key, (loads, stores) in accesses.items():
                if key in handled:
                    continue  # claimed by a prescreen static fact
                addr = (loads or stores)[0][2].ptr
                var = (loads or stores)[0][2].var
                size = _probe_size_of(loads, stores)
                if stores and not loads:
                    if all(deps.store_unread_in_roi(s) for _, _, s in stores):
                        letters = "O"
                        if multi_trip and _unconditional(stores, region, dom):
                            letters = "CO"
                        plan.insertions.setdefault(id(anchor), []).append(
                            ProbeClassify(letters, addr, size, var,
                                          stores[0][2].loc, roi_id=roi.roi_id)
                        )
                        for _, _, store in stores:
                            plan.suppressed.add(id(store))
                        handled.add(key)
                elif loads and not stores:
                    if all(deps.load_invariant_in_roi(l) for _, _, l in loads):
                        plan.insertions.setdefault(id(anchor), []).append(
                            ProbeClassify("I", addr, size, var,
                                          loads[0][2].loc, roi_id=roi.roi_id)
                        )
                        for _, _, load in loads:
                            plan.suppressed.add(id(load))
                        handled.add(key)
        return False


def _group_region_accesses(function: Function, region: RoiRegion):
    """Group in-region loads/stores by syntactic PSE key (alloca/global)."""
    accesses: Dict[Tuple, Tuple[list, list]] = {}
    for block, index, instr in region.instructions():
        if isinstance(instr, Load):
            key = pse_key_of_address(function, instr.ptr)
            if key is not None:
                accesses.setdefault(key, ([], []))[0].append(
                    (block, index, instr)
                )
        elif isinstance(instr, Store):
            key = pse_key_of_address(function, instr.ptr)
            if key is not None:
                accesses.setdefault(key, ([], []))[1].append(
                    (block, index, instr)
                )
    return accesses


def _probe_size_of(loads, stores) -> int:
    if loads:
        return 1 if isinstance(loads[0][2].result.ty, ct.CharType) else 8
    store = stores[0][2]
    pointee = (store.ptr.ty.pointee
               if isinstance(store.ptr.ty, ct.PointerType) else ct.INT)
    return 1 if isinstance(pointee, ct.CharType) else 8


def _provably_multi_trip(function: Function, loop: Loop, roi: RoiInfo) -> bool:
    induction_addr = None
    if roi.induction_var is not None:
        alloca = function.var_allocas.get(roi.induction_var.uid)
        if alloca is not None and not alloca.promoted:
            induction_addr = alloca.result
    trip = match_trip_count(function, loop, induction_addr)
    trips = trip.constant_trips if trip else None
    return trips is not None and trips >= 2


def _unconditional(stores, region: RoiRegion, dom) -> bool:
    """Does at least one of the stores execute on every invocation?  True
    when its block dominates every ROI exit site."""
    exit_blocks = [block for block, _ in region.end_sites]
    for block, _, _ in stores:
        if all(dom.dominates(block, exit_block) for exit_block in exit_blocks):
            return True
    return False


@register_pass
class AggregationPass(Pass):
    """Opt 2: collapse induction-indexed single-site array traffic inside
    the region into one ranged probe per dynamic invocation."""

    name = "aggregation"

    def run(self, module: Module, am: AnalysisManager,
            ctx: PipelineContext) -> bool:
        plan = ctx.ensure_plan()
        for roi_id, region in am.get("roi-regions").items():
            roi = module.rois[roi_id]
            # Loop-body ROIs without a recognisable loop shape get no
            # hoisting anchor at all (matching opt 3's gate); block-shaped
            # ROIs aggregate their inner loops directly.
            if roi.is_loop_body and _roi_loop_anchor(am, module,
                                                     region) is None:
                continue
            self._plan_region(am, region, plan)
        return False

    def _plan_region(self, am: AnalysisManager, region: RoiRegion,
                     plan) -> None:
        function = region.function
        dom = am.get("dominators", function)
        loops = am.get("loops", function)
        region_blocks = region.blocks
        exit_blocks = [block for block, _ in region.end_sites]
        for loop in loops:
            if not loop.blocks <= region_blocks:
                continue
            if loop.preheader is None or loop.preheader not in region_blocks:
                continue
            anchor = loop.preheader.terminator
            if anchor is None:
                continue
            # The inner loop must run on every invocation for "same
            # operation at every dynamic invocation" to hold.
            if not all(dom.dominates(loop.preheader, e) for e in exit_blocks):
                continue
            trip = match_trip_count(function, loop, None)
            if trip is None:
                continue
            for probe in _aggregate_candidates(am, function, region, loop,
                                               trip, plan):
                plan.insertions.setdefault(id(anchor), []).append(probe)


def _aggregate_candidates(am, function, region, loop, trip, plan):
    """Find `arr[induction]` single-site accesses eligible for aggregation."""
    points_to = am.get("points-to")
    induction_loads = {
        instr.result.name
        for block in loop.blocks
        for instr in block.instrs
        if isinstance(instr, Load) and instr.ptr is trip.induction_alloca
    }
    addr_map: Dict[str, AddrOffset] = {}
    for block in loop.blocks:
        for instr in block.instrs:
            if (isinstance(instr, AddrOffset)
                    and isinstance(instr.index, Temp)
                    and instr.index.name in induction_loads
                    and instr.offset == 0
                    and instr.scale > 0):
                addr_map[instr.result.name] = instr

    probes: List[ProbeAccess] = []
    fn = function.name
    for addr_name, addr_instr in addr_map.items():
        users: List[Tuple[str, Instr]] = []
        for _, _, instr in region.instructions():
            if isinstance(instr, Load) and isinstance(instr.ptr, Temp) \
                    and instr.ptr.name == addr_name:
                users.append(("load", instr))
            elif isinstance(instr, Store) and isinstance(instr.ptr, Temp) \
                    and instr.ptr.name == addr_name:
                users.append(("store", instr))
        if len(users) != 1:
            continue
        kind, access = users[0]
        if id(access) in plan.suppressed:
            continue  # already claimed (e.g. by a prescreen static fact)
        # No other in-region access may touch the same array.
        conflict = False
        for _, _, other in region.instructions():
            if other is access:
                continue
            if isinstance(other, (Load, Store)):
                other_base = other.ptr
                if isinstance(other_base, Temp) and other_base.name == addr_name:
                    continue
                if points_to.may_alias(fn, addr_instr.base, fn, other.ptr):
                    conflict = True
                    break
        if conflict:
            continue
        base = addr_instr.base
        if not _available_at(am, function, base, loop.preheader):
            continue
        if trip.bound_const is not None:
            count: Value = Const(trip.bound_const, ct.INT)
            extra: List[Instr] = []
        elif trip.bound_addr is not None and _available_at(
            am, function, trip.bound_addr, loop.preheader
        ):
            bound_temp = Temp(function.new_temp_name(), ct.INT)
            extra = [Load(bound_temp, trip.bound_addr, None, access.loc)]
            count = bound_temp
        else:
            continue
        probes.extend(extra)
        probes.append(
            ProbeAccess(
                AccessKind.WRITE if kind == "store" else AccessKind.READ,
                base,
                addr_instr.scale,
                None,
                access.loc,
                count=count,
                stride=addr_instr.scale,
            )
        )
        plan.suppressed.add(id(access))
    return probes


def _available_at(am: AnalysisManager, function: Function, value: Value,
                  block) -> bool:
    """Is ``value`` usable in ``block`` (defined in a dominating block)?"""
    if isinstance(value, (Const, GlobalRef, FunctionRef)):
        return True
    if isinstance(value, Temp):
        if value.name.startswith("arg"):
            return True
        dom = am.get("dominators", function)
        for candidate in function.blocks:
            for instr in candidate.instrs:
                if instr.result is value:
                    return dom.dominates(candidate, block)
    return False


# ---------------------------------------------------------------------------
# Opt 1: subsequent accesses
# ---------------------------------------------------------------------------


@register_pass
class SubsequentAccessesPass(Pass):
    """Opt 1: must-already-accessed data-flow marks redundant probes."""

    name = "subsequent-accesses"

    def run(self, module: Module, am: AnalysisManager,
            ctx: PipelineContext) -> bool:
        plan = ctx.ensure_plan()
        for roi_id, region in am.get("roi-regions").items():
            function = region.function
            handled = ctx.handled.get(roi_id, set())
            result = am.get("must-access", function, region)
            for block, index, instr in region.instructions():
                if id(instr) in plan.suppressed:
                    continue
                if isinstance(instr, Load):
                    key = pse_key_of_address(function, instr.ptr)
                    if key in handled:
                        continue
                    if result.load_is_redundant(function, block, index,
                                                instr):
                        plan.suppressed.add(id(instr))
                elif isinstance(instr, Store):
                    key = pse_key_of_address(function, instr.ptr)
                    if key in handled:
                        continue
                    if result.store_is_redundant(function, block, index,
                                                 instr):
                        plan.suppressed.add(id(instr))
        return False


# ---------------------------------------------------------------------------
# Opt 5 (second half): suppression outside every ROI's dynamic extent
# ---------------------------------------------------------------------------


@register_pass
class OutOfRoiSuppressionPass(Pass):
    """Accesses statically outside every ROI region only matter if they
    can execute in an ROI's *dynamic* extent — i.e. if the enclosing
    function is transitively callable from a call site inside some ROI
    region.  Everything else needs no probes at all."""

    name = "out-of-roi-suppression"

    def run(self, module: Module, am: AnalysisManager,
            ctx: PipelineContext) -> bool:
        plan = ctx.ensure_plan()
        callgraph = am.get("callgraph")
        regions = am.get("roi-regions")
        called_in_roi: Set[str] = set()
        for region in regions.values():
            for _, _, instr in region.instructions():
                if isinstance(instr, Call):
                    target = instr.direct_target
                    if target is None:
                        called_in_roi |= set(
                            callgraph.points_to.call_targets(
                                region.function.name, instr
                            )
                        )
                    elif target in module.functions:
                        called_in_roi.add(target)
        dynamic_roi_fns = callgraph.transitive_callees(sorted(called_in_roi))
        regions_by_fn: Dict[str, List[RoiRegion]] = {}
        for region in regions.values():
            regions_by_fn.setdefault(region.function.name, []).append(region)
        for function in module.functions.values():
            if function.name in dynamic_roi_fns:
                continue
            fn_regions = regions_by_fn.get(function.name, [])
            for block in function.blocks:
                for index, instr in enumerate(block.instrs):
                    if not isinstance(instr, (Load, Store)):
                        continue
                    if any(r.contains(block, index) for r in fn_regions):
                        continue
                    plan.suppressed.add(id(instr))
                    plan.escape_suppressed.add(id(instr))
        return False


# ---------------------------------------------------------------------------
# Opt 6: Pin-gate reduction
# ---------------------------------------------------------------------------


@register_pass
class PinReductionPass(Pass):
    """Clear Pin gates on calls that provably never reach precompiled code
    that touches program memory (pure-math builtins are modelled by the
    tool's libc knowledge and need no tracing)."""

    name = "pin-reduction"

    def run(self, module: Module, am: AnalysisManager,
            ctx: PipelineContext) -> bool:
        plan = ctx.ensure_plan()
        points_to = am.get("points-to")
        for function in module.functions.values():
            for block in function.blocks:
                for instr in block.instrs:
                    if not isinstance(instr, Call):
                        continue
                    target = instr.direct_target
                    if target is not None:
                        if target in builtins_spec.BUILTINS:
                            if not builtins_spec.BUILTINS[
                                target
                            ].touches_memory:
                                plan.pin_cleared.add(id(instr))
                        else:
                            plan.pin_cleared.add(id(instr))
                    else:
                        if not points_to.may_reach_builtin(function.name,
                                                           instr):
                            plan.pin_cleared.add(id(instr))
        return False


def runtime_config_for(
    policy: InstrumentationPolicy, options: CarmotOptions, **kwargs
) -> RuntimeConfig:
    """RuntimeConfig matching a CARMOT build (opt 7 is a runtime knob)."""
    return RuntimeConfig(
        policy=policy,
        callstack_clustering=options.callstack_clustering,
        **kwargs,
    )


# Pipeline aliases: the three build modes, by name.
register_alias("carmot", carmot_pass_names(CarmotOptions()))
register_alias("naive", ["naive-instrument"])
register_alias("baseline", ["o3"])
