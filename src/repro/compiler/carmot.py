"""The CARMOT compilation pipeline: PSEC-specific optimizations 1–7 (§4.4–4.5).

Order of operations on a freshly-lowered module:

1. points-to + complete call graph;
2. **opt 5** (call-graph): functions that can never be on the callstack when
   an ROI starts get the full conventional ``-O3`` treatment;
3. **opt 4** (selective mem2reg): in the remaining ("tagged") functions,
   promote locals never used in any ROI, plus the ROI loops' governing
   induction variables (which the pragma generator privatizes implicitly);
4. **opt 1** (subsequent accesses): must-already-accessed data-flow marks
   redundant probes;
5. **opt 3** (fixed FSA states): loop-invariant scalar loads → hoisted
   ``classify I``; never-read stores → hoisted ``classify O`` (+``C`` when
   the store provably executes in ≥2 invocations);
6. **opt 2** (PSE aggregation): single-site, induction-indexed contiguous
   accesses inside the ROI collapse to one ranged probe per invocation;
7. **opt 6** (Pin reduction): clear gates on calls that provably never
   reach precompiled code that touches program memory;
8. instrument; **opt 7** (callstack clustering) is a runtime knob carried
   in the result.

Every optimization can be toggled independently — Figure 8 measures the
per-optimization contribution exactly this way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import builtins_spec
from repro.lang import types as ct
from repro.ir.instructions import (
    AccessKind,
    AddrOffset,
    Alloca,
    Call,
    Instr,
    Load,
    ProbeAccess,
    ProbeClassify,
    Store,
)
from repro.ir.module import Function, Module, RoiInfo
from repro.ir.values import Const, FunctionRef, GlobalRef, Temp, Value
from repro.analysis.alias import PointsTo
from repro.analysis.callgraph import CallGraph
from repro.analysis.dominators import DominatorInfo
from repro.analysis.loops import (
    Loop,
    find_loops,
    innermost_loop_containing,
    match_trip_count,
)
from repro.analysis.mustaccess import analyze_must_access, pse_key_of_address
from repro.analysis.pdg import MemoryDependences
from repro.analysis.regions import RoiRegion, all_roi_regions
from repro.compiler.instrument import (
    InstrumentationPlan,
    InstrumentationReport,
    instrument_module,
)
from repro.compiler.mem2reg import promotable_allocas, promote_allocas
from repro.compiler.o3 import optimize_o3
from repro.runtime.config import InstrumentationPolicy, RuntimeConfig


@dataclass
class CarmotOptions:
    """Per-optimization toggles (all on = full CARMOT)."""

    subsequent_accesses: bool = True      # opt 1
    aggregation: bool = True              # opt 2
    fixed_classification: bool = True     # opt 3
    selective_mem2reg: bool = True        # opt 4
    callgraph_o3: bool = True             # opt 5
    reduce_pin: bool = True               # opt 6
    callstack_clustering: bool = True     # opt 7 (runtime knob)

    @classmethod
    def none(cls) -> "CarmotOptions":
        return cls(False, False, False, False, False, False, False)


@dataclass
class CarmotBuildInfo:
    """Metadata about one CARMOT compilation, for tests and Figure 8."""

    options: CarmotOptions
    o3_functions: List[str] = field(default_factory=list)
    promoted_locals: int = 0
    report: Optional[InstrumentationReport] = None


def apply_carmot(
    module: Module,
    policy: InstrumentationPolicy,
    options: Optional[CarmotOptions] = None,
) -> CarmotBuildInfo:
    """Run the CARMOT pipeline on a lowered module, in place."""
    options = options or CarmotOptions()
    info = CarmotBuildInfo(options=options)
    points_to = PointsTo(module)
    callgraph = CallGraph(module, points_to)

    roi_functions = sorted({roi.function for roi in module.rois.values()})
    tagged = callgraph.transitive_callers(roi_functions)

    # Opt 5: conventional optimization of provably-ROI-free functions.
    if options.callgraph_o3:
        for function in module.functions.values():
            if function.name not in tagged:
                optimize_o3(function)
                info.o3_functions.append(function.name)

    # Opt 4: selective mem2reg inside tagged functions.
    if options.selective_mem2reg:
        info.promoted_locals = _selective_mem2reg(module, tagged)

    # Points-to sets are conservative over the rewritten bodies; rebuild so
    # later queries see the post-mem2reg IR.
    points_to = PointsTo(module)
    regions = all_roi_regions(module)

    plan = InstrumentationPlan(policy=policy, gate_all_calls=True)

    for roi_id, region in regions.items():
        roi = module.rois[roi_id]
        function = region.function
        handled: Set[Tuple] = set()
        if options.fixed_classification or options.aggregation:
            handled = _plan_roi_optimizations(
                module, roi, region, points_to, plan, options
            )
        if options.subsequent_accesses:
            _plan_subsequent_accesses(function, region, plan, handled)

    if options.reduce_pin:
        _plan_pin_reduction(module, points_to, plan)

    if options.callgraph_o3:
        _plan_out_of_roi_suppression(module, callgraph, regions, plan)

    info.report = instrument_module(module, plan)
    return info


# ---------------------------------------------------------------------------
# Opt 4
# ---------------------------------------------------------------------------


def _selective_mem2reg(module: Module, tagged: Set[str]) -> int:
    regions = all_roi_regions(module)
    regions_by_fn: Dict[str, List[RoiRegion]] = {}
    for region in regions.values():
        regions_by_fn.setdefault(region.function.name, []).append(region)
    induction_uids: Dict[str, Set[int]] = {}
    for roi in module.rois.values():
        if roi.induction_var is not None:
            induction_uids.setdefault(roi.function, set()).add(
                roi.induction_var.uid
            )
    promoted = 0
    for function in module.functions.values():
        if function.name not in tagged or function.conventionally_optimized:
            continue
        used_in_roi: Set[str] = set()
        for region in regions_by_fn.get(function.name, ()):
            for _, _, instr in region.instructions():
                if isinstance(instr, (Load, Store)) and isinstance(
                    instr.ptr, Temp
                ):
                    used_in_roi.add(instr.ptr.name)
        inductions = induction_uids.get(function.name, set())
        chosen: List[Alloca] = []
        for alloca in promotable_allocas(function):
            is_induction = (alloca.var is not None
                            and alloca.var.uid in inductions)
            if alloca.result.name not in used_in_roi or is_induction:
                chosen.append(alloca)
        promoted += promote_allocas(function, chosen)
    return promoted


# ---------------------------------------------------------------------------
# Opts 2 + 3
# ---------------------------------------------------------------------------


def _plan_roi_optimizations(
    module: Module,
    roi: RoiInfo,
    region: RoiRegion,
    points_to: PointsTo,
    plan: InstrumentationPlan,
    options: CarmotOptions,
) -> Set[Tuple]:
    """Fixed classification (scalars) and aggregation (arrays) for one ROI.

    Returns the set of syntactic PSE keys whose probes were replaced, so
    opt 1 does not need to consider them again.
    """
    function = region.function
    handled: Set[Tuple] = set()
    if not roi.is_loop_body:
        if options.aggregation:
            _plan_inner_loop_aggregation(function, region, points_to, plan)
        return handled
    dom = DominatorInfo(function)
    loops = find_loops(function, dom)
    loop = innermost_loop_containing(loops, region.begin_block)
    if loop is None or loop.preheader is None:
        return handled
    anchor = loop.preheader.terminator
    if anchor is None:
        return handled

    deps = MemoryDependences(function, region, points_to)
    accesses = _group_region_accesses(function, region)

    if options.fixed_classification:
        multi_trip = _provably_multi_trip(function, loop, roi)
        for key, (loads, stores) in accesses.items():
            addr = (loads or stores)[0][2].ptr
            var = (loads or stores)[0][2].var
            size = _probe_size_of(loads, stores)
            if stores and not loads:
                if all(deps.store_unread_in_roi(s) for _, _, s in stores):
                    letters = "O"
                    if multi_trip and _unconditional(stores, region, dom):
                        letters = "CO"
                    plan.insertions.setdefault(id(anchor), []).append(
                        ProbeClassify(letters, addr, size, var,
                                      stores[0][2].loc, roi_id=roi.roi_id)
                    )
                    for _, _, store in stores:
                        plan.suppressed.add(id(store))
                    handled.add(key)
            elif loads and not stores:
                if all(deps.load_invariant_in_roi(l) for _, _, l in loads):
                    plan.insertions.setdefault(id(anchor), []).append(
                        ProbeClassify("I", addr, size, var,
                                      loads[0][2].loc, roi_id=roi.roi_id)
                    )
                    for _, _, load in loads:
                        plan.suppressed.add(id(load))
                    handled.add(key)

    if options.aggregation:
        _plan_inner_loop_aggregation(function, region, points_to, plan)
    return handled


def _group_region_accesses(function: Function, region: RoiRegion):
    """Group in-region loads/stores by syntactic PSE key (alloca/global)."""
    accesses: Dict[Tuple, Tuple[list, list]] = {}
    for block, index, instr in region.instructions():
        if isinstance(instr, Load):
            key = pse_key_of_address(function, instr.ptr)
            if key is not None:
                accesses.setdefault(key, ([], []))[0].append(
                    (block, index, instr)
                )
        elif isinstance(instr, Store):
            key = pse_key_of_address(function, instr.ptr)
            if key is not None:
                accesses.setdefault(key, ([], []))[1].append(
                    (block, index, instr)
                )
    return accesses


def _probe_size_of(loads, stores) -> int:
    if loads:
        return 1 if isinstance(loads[0][2].result.ty, ct.CharType) else 8
    store = stores[0][2]
    pointee = (store.ptr.ty.pointee
               if isinstance(store.ptr.ty, ct.PointerType) else ct.INT)
    return 1 if isinstance(pointee, ct.CharType) else 8


def _provably_multi_trip(function: Function, loop: Loop, roi: RoiInfo) -> bool:
    induction_addr = None
    if roi.induction_var is not None:
        alloca = function.var_allocas.get(roi.induction_var.uid)
        if alloca is not None and not alloca.promoted:
            induction_addr = alloca.result
    trip = match_trip_count(function, loop, induction_addr)
    trips = trip.constant_trips if trip else None
    return trips is not None and trips >= 2


def _unconditional(stores, region: RoiRegion, dom: DominatorInfo) -> bool:
    """Does at least one of the stores execute on every invocation?  True
    when its block dominates every ROI exit site."""
    exit_blocks = [block for block, _ in region.end_sites]
    for block, _, _ in stores:
        if all(dom.dominates(block, exit_block) for exit_block in exit_blocks):
            return True
    return False


def _plan_inner_loop_aggregation(
    function: Function,
    region: RoiRegion,
    points_to: PointsTo,
    plan: InstrumentationPlan,
) -> None:
    """Opt 2: collapse induction-indexed single-site array traffic inside the
    region into one ranged probe per dynamic invocation."""
    dom = DominatorInfo(function)
    loops = find_loops(function, dom)
    region_blocks = region.blocks
    exit_blocks = [block for block, _ in region.end_sites]
    for loop in loops:
        if not loop.blocks <= region_blocks:
            continue
        if loop.preheader is None or loop.preheader not in region_blocks:
            continue
        anchor = loop.preheader.terminator
        if anchor is None:
            continue
        # The inner loop must run on every invocation for "same operation at
        # every dynamic invocation" to hold.
        if not all(dom.dominates(loop.preheader, e) for e in exit_blocks):
            continue
        trip = match_trip_count(function, loop, None)
        if trip is None:
            continue
        for probe in _aggregate_candidates(function, region, loop, trip,
                                           points_to, plan):
            plan.insertions.setdefault(id(anchor), []).append(probe)


def _aggregate_candidates(function, region, loop, trip, points_to, plan):
    """Find `arr[induction]` single-site accesses eligible for aggregation."""
    induction_loads = {
        instr.result.name
        for block in loop.blocks
        for instr in block.instrs
        if isinstance(instr, Load) and instr.ptr is trip.induction_alloca
    }
    addr_map: Dict[str, AddrOffset] = {}
    for block in loop.blocks:
        for instr in block.instrs:
            if (isinstance(instr, AddrOffset)
                    and isinstance(instr.index, Temp)
                    and instr.index.name in induction_loads
                    and instr.offset == 0
                    and instr.scale > 0):
                addr_map[instr.result.name] = instr

    probes: List[ProbeAccess] = []
    fn = function.name
    for addr_name, addr_instr in addr_map.items():
        users: List[Tuple[str, Instr]] = []
        for _, _, instr in region.instructions():
            if isinstance(instr, Load) and isinstance(instr.ptr, Temp) \
                    and instr.ptr.name == addr_name:
                users.append(("load", instr))
            elif isinstance(instr, Store) and isinstance(instr.ptr, Temp) \
                    and instr.ptr.name == addr_name:
                users.append(("store", instr))
        if len(users) != 1:
            continue
        kind, access = users[0]
        # No other in-region access may touch the same array.
        conflict = False
        for _, _, other in region.instructions():
            if other is access:
                continue
            if isinstance(other, (Load, Store)):
                other_base = other.ptr
                if isinstance(other_base, Temp) and other_base.name == addr_name:
                    continue
                if points_to.may_alias(fn, addr_instr.base, fn, other.ptr):
                    conflict = True
                    break
        if conflict:
            continue
        base = addr_instr.base
        if not _available_at(function, base, loop.preheader):
            continue
        if trip.bound_const is not None:
            count: Value = Const(trip.bound_const, ct.INT)
            extra: List[Instr] = []
        elif trip.bound_addr is not None and _available_at(
            function, trip.bound_addr, loop.preheader
        ):
            bound_temp = Temp(function.new_temp_name(), ct.INT)
            extra = [Load(bound_temp, trip.bound_addr, None, access.loc)]
            count = bound_temp
        else:
            continue
        probes.extend(extra)
        probes.append(
            ProbeAccess(
                AccessKind.WRITE if kind == "store" else AccessKind.READ,
                base,
                addr_instr.scale,
                None,
                access.loc,
                count=count,
                stride=addr_instr.scale,
            )
        )
        plan.suppressed.add(id(access))
    return probes


def _available_at(function: Function, value: Value, block) -> bool:
    """Is ``value`` usable in ``block`` (defined in a dominating block)?"""
    if isinstance(value, (Const, GlobalRef, FunctionRef)):
        return True
    if isinstance(value, Temp):
        if value.name.startswith("arg"):
            return True
        dom = DominatorInfo(function)
        for candidate in function.blocks:
            for instr in candidate.instrs:
                if instr.result is value:
                    return dom.dominates(candidate, block)
    return False


# ---------------------------------------------------------------------------
# Opt 1
# ---------------------------------------------------------------------------


def _plan_subsequent_accesses(
    function: Function,
    region: RoiRegion,
    plan: InstrumentationPlan,
    handled: Set[Tuple],
) -> None:
    result = analyze_must_access(function, region)
    for block, index, instr in region.instructions():
        if id(instr) in plan.suppressed:
            continue
        if isinstance(instr, Load):
            key = pse_key_of_address(function, instr.ptr)
            if key in handled:
                continue
            if result.load_is_redundant(function, block, index, instr):
                plan.suppressed.add(id(instr))
        elif isinstance(instr, Store):
            key = pse_key_of_address(function, instr.ptr)
            if key in handled:
                continue
            if result.store_is_redundant(function, block, index, instr):
                plan.suppressed.add(id(instr))


def _plan_out_of_roi_suppression(
    module: Module,
    callgraph: CallGraph,
    regions: Dict[int, RoiRegion],
    plan: InstrumentationPlan,
) -> None:
    """Part of opt 5: accesses statically outside every ROI region only
    matter if they can execute in an ROI's *dynamic* extent — i.e. if the
    enclosing function is transitively callable from a call site inside
    some ROI region.  Everything else needs no probes at all."""
    called_in_roi: Set[str] = set()
    for region in regions.values():
        for _, _, instr in region.instructions():
            if isinstance(instr, Call):
                target = instr.direct_target
                if target is None:
                    called_in_roi |= set(
                        callgraph.points_to.call_targets(
                            region.function.name, instr
                        )
                    )
                elif target in module.functions:
                    called_in_roi.add(target)
    dynamic_roi_fns = callgraph.transitive_callees(sorted(called_in_roi))
    regions_by_fn: Dict[str, List[RoiRegion]] = {}
    for region in regions.values():
        regions_by_fn.setdefault(region.function.name, []).append(region)
    for function in module.functions.values():
        if function.name in dynamic_roi_fns:
            continue
        fn_regions = regions_by_fn.get(function.name, [])
        for block in function.blocks:
            for index, instr in enumerate(block.instrs):
                if not isinstance(instr, (Load, Store)):
                    continue
                if any(r.contains(block, index) for r in fn_regions):
                    continue
                plan.suppressed.add(id(instr))
                plan.escape_suppressed.add(id(instr))


# ---------------------------------------------------------------------------
# Opt 6
# ---------------------------------------------------------------------------


def _plan_pin_reduction(
    module: Module, points_to: PointsTo, plan: InstrumentationPlan
) -> None:
    """Clear Pin gates on calls that provably never reach precompiled code
    that touches program memory (pure-math builtins are modelled by the
    tool's libc knowledge and need no tracing)."""
    for function in module.functions.values():
        for block in function.blocks:
            for instr in block.instrs:
                if not isinstance(instr, Call):
                    continue
                target = instr.direct_target
                if target is not None:
                    if target in builtins_spec.BUILTINS:
                        if not builtins_spec.BUILTINS[target].touches_memory:
                            plan.pin_cleared.add(id(instr))
                    else:
                        plan.pin_cleared.add(id(instr))
                else:
                    if not points_to.may_reach_builtin(function.name, instr):
                        plan.pin_cleared.add(id(instr))


def runtime_config_for(
    policy: InstrumentationPolicy, options: CarmotOptions, **kwargs
) -> RuntimeConfig:
    """RuntimeConfig matching a CARMOT build (opt 7 is a runtime knob)."""
    return RuntimeConfig(
        policy=policy,
        callstack_clustering=options.callstack_clustering,
        **kwargs,
    )
