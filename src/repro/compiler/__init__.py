"""The CARMOT compiler: instrumentation, PSEC-specific optimizations, -O3.

Importing this package registers every compiler pass (the CARMOT
planners, the instrumenters, and the conventional ``o3`` / ``mem2reg`` /
``cleanup`` transforms) plus the ``carmot`` / ``naive`` / ``baseline``
pipeline aliases with :mod:`repro.passes.registry`.
"""

from repro.compiler.carmot import (
    OPTION_PASSES,
    CarmotBuildInfo,
    CarmotOptions,
    apply_carmot,
    carmot_pass_names,
)
from repro.compiler.driver import (
    BuildMode,
    CompiledProgram,
    compile_baseline,
    compile_carmot,
    compile_naive,
    compile_pipeline,
    frontend,
)
from repro.compiler.instrument import (
    InstrumentationPlan,
    InstrumentationReport,
    instrument_module,
)
from repro.compiler.mem2reg import promotable_allocas, promote_allocas
from repro.compiler.prescreen import (
    PRESCREEN_MODES,
    PrescreenPass,
    StaticFact,
    StaticFacts,
)
from repro.compiler.o3 import optimize_module_o3, optimize_o3
from repro.compiler.opts import (
    eliminate_dead_code,
    fold_constants,
    optimize_function,
    simplify_cfg,
)

__all__ = [
    "OPTION_PASSES", "CarmotBuildInfo", "CarmotOptions", "apply_carmot",
    "carmot_pass_names", "BuildMode", "CompiledProgram", "compile_baseline",
    "compile_carmot", "compile_naive", "compile_pipeline", "frontend",
    "InstrumentationPlan", "InstrumentationReport", "instrument_module",
    "PRESCREEN_MODES", "PrescreenPass", "StaticFact", "StaticFacts",
    "promotable_allocas", "promote_allocas", "optimize_module_o3",
    "optimize_o3", "eliminate_dead_code", "fold_constants",
    "optimize_function", "simplify_cfg",
]
