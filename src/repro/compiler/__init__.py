"""The CARMOT compiler: instrumentation, PSEC-specific optimizations, -O3."""

from repro.compiler.carmot import CarmotBuildInfo, CarmotOptions, apply_carmot
from repro.compiler.driver import (
    BuildMode,
    CompiledProgram,
    compile_baseline,
    compile_carmot,
    compile_naive,
    frontend,
)
from repro.compiler.instrument import (
    InstrumentationPlan,
    InstrumentationReport,
    instrument_module,
)
from repro.compiler.mem2reg import promotable_allocas, promote_allocas
from repro.compiler.o3 import optimize_module_o3, optimize_o3
from repro.compiler.opts import (
    eliminate_dead_code,
    fold_constants,
    optimize_function,
    simplify_cfg,
)

__all__ = [
    "CarmotBuildInfo", "CarmotOptions", "apply_carmot", "BuildMode",
    "CompiledProgram", "compile_baseline", "compile_carmot", "compile_naive",
    "frontend", "InstrumentationPlan", "InstrumentationReport",
    "instrument_module", "promotable_allocas", "promote_allocas",
    "optimize_module_o3", "optimize_o3", "eliminate_dead_code",
    "fold_constants", "optimize_function", "simplify_cfg",
]
