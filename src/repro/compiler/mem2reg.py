"""Memory-to-register promotion (SSA construction).

Two clients:

- the **baseline/-O3 analogue** promotes every eligible alloca — this is
  the "general-purpose compiler optimization" that §2.3 explains is
  *incompatible* with PSEC (it erases the variable↔IR mapping), which is
  why it may only run where PSEC provably cannot care;
- the **selective mem2reg** of §4.4.4 promotes only allocas a filter
  approves (locals never used in any ROI, and loop-governing induction
  variables).

Standard algorithm: φ insertion at the iterated dominance frontier of the
defining stores, then renaming along the dominator tree.  Eligibility:
scalar allocas whose address never escapes direct loads/stores.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.lang import types as ct
from repro.ir.instructions import Alloca, Instr, Load, Phi, Store
from repro.ir.module import Block, Function
from repro.ir.values import Const, Temp, Value
from repro.analysis.dominators import DominatorInfo
from repro.analysis.pdg import address_taken_allocas


def promotable_allocas(function: Function) -> List[Alloca]:
    """Allocas eligible for promotion: scalar, never address-taken."""
    taken = address_taken_allocas(function)
    result = []
    for instr in function.entry.instrs:
        if not isinstance(instr, Alloca):
            continue
        if instr.result.name in taken:
            continue
        if not instr.allocated_type.is_scalar:
            continue
        result.append(instr)
    return result


def promote_allocas(
    function: Function,
    allocas: Optional[List[Alloca]] = None,
) -> int:
    """Promote ``allocas`` (default: all eligible) to SSA values.

    Returns the number of allocas promoted.  Promoted allocas, their loads,
    and their stores are removed; φ-nodes are inserted where needed.
    """
    eligible = set(a.result.name for a in promotable_allocas(function))
    if allocas is None:
        chosen = [a for a in function.entry.instrs
                  if isinstance(a, Alloca) and a.result.name in eligible]
    else:
        chosen = [a for a in allocas if a.result.name in eligible]
    if not chosen:
        return 0
    dom = DominatorInfo(function)
    slots = {a.result.name: a for a in chosen}

    def_blocks: Dict[str, Set[Block]] = {name: set() for name in slots}
    for block in function.blocks:
        for instr in block.instrs:
            if isinstance(instr, Store) and isinstance(instr.ptr, Temp):
                if instr.ptr.name in slots:
                    def_blocks[instr.ptr.name].add(block)

    # φ placement at iterated dominance frontiers.
    phi_sites: Dict[Tuple[Block, str], Phi] = {}
    for name, blocks in def_blocks.items():
        worklist = list(blocks)
        placed: Set[Block] = set()
        while worklist:
            block = worklist.pop()
            for frontier_block in dom.frontier.get(block, ()):
                if (frontier_block, name) in phi_sites:
                    continue
                alloca = slots[name]
                phi = Phi(
                    Temp(function.new_temp_name(), alloca.allocated_type),
                    {},
                    alloca.loc,
                )
                phi_sites[(frontier_block, name)] = phi
                frontier_block.instrs.insert(0, phi)
                if frontier_block not in placed:
                    placed.add(frontier_block)
                    worklist.append(frontier_block)

    phi_owner: Dict[int, str] = {
        id(phi): name for (_, name), phi in phi_sites.items()
    }

    # Renaming along the dominator tree.
    undef: Dict[str, Value] = {}
    for name, alloca in slots.items():
        zero: Value = Const(0, ct.INT)
        if isinstance(alloca.allocated_type, ct.FloatType):
            zero = Const(0.0, ct.FLOAT)
        elif isinstance(alloca.allocated_type, ct.PointerType):
            zero = Const(0, alloca.allocated_type)
        undef[name] = zero

    stacks: Dict[str, List[Value]] = {name: [] for name in slots}
    replacements: Dict[str, Value] = {}  # load result temp -> value

    def current(name: str) -> Value:
        stack = stacks[name]
        return stack[-1] if stack else undef[name]

    def resolve(value: Value) -> Value:
        seen = 0
        while isinstance(value, Temp) and value.name in replacements:
            value = replacements[value.name]
            seen += 1
            if seen > 1_000_000:  # pragma: no cover - cycle guard
                break
        return value

    entry = function.entry
    visit_stack: List[Tuple[Block, int, List[str]]] = [(entry, 0, [])]
    # Iterative dom-tree DFS with explicit push counts for unwinding.
    order: List[Tuple[str, Block, List[str]]] = []

    def process_block(block: Block) -> List[str]:
        pushed: List[str] = []
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            if isinstance(instr, Phi) and id(instr) in phi_owner:
                name = phi_owner[id(instr)]
                stacks[name].append(instr.result)
                pushed.append(name)
                new_instrs.append(instr)
            elif (isinstance(instr, Load) and isinstance(instr.ptr, Temp)
                    and instr.ptr.name in slots):
                replacements[instr.result.name] = current(instr.ptr.name)
            elif (isinstance(instr, Store) and isinstance(instr.ptr, Temp)
                    and instr.ptr.name in slots):
                stacks[instr.ptr.name].append(resolve(instr.value))
                pushed.append(instr.ptr.name)
            elif isinstance(instr, Alloca) and instr.result.name in slots:
                instr.promoted = True
            else:
                new_instrs.append(instr)
        block.instrs = new_instrs
        # Fill φ arms of successors.
        for succ in block.successors():
            for instr in succ.instrs:
                if not isinstance(instr, Phi):
                    break
                name = phi_owner.get(id(instr))
                if name is not None:
                    instr.incomings[block] = current(name)
        return pushed

    stack: List[Tuple[Block, bool]] = [(entry, False)]
    pushed_by_block: Dict[Block, List[str]] = {}
    while stack:
        block, done = stack.pop()
        if done:
            for name in reversed(pushed_by_block.get(block, [])):
                stacks[name].pop()
            continue
        pushed_by_block[block] = process_block(block)
        stack.append((block, True))
        for child in dom.children(block):
            stack.append((child, False))

    # Rewrite every remaining operand through the replacement map, and drop
    # the promoted allocas.
    for block in function.blocks:
        kept: List[Instr] = []
        for instr in block.instrs:
            if isinstance(instr, Alloca) and instr.result.name in slots:
                continue
            for operand in list(instr.operands()):
                resolved = resolve(operand)
                if resolved is not operand:
                    instr.replace_operand(operand, resolved)
            if isinstance(instr, Store):
                resolved = resolve(instr.value)
                if resolved is not instr.value:
                    instr.value = resolved
            kept.append(instr)
        block.instrs = kept
    # φ arms may also reference replaced temps (loads in predecessors).
    for block in function.blocks:
        for instr in block.instrs:
            if isinstance(instr, Phi):
                for pred, value in list(instr.incomings.items()):
                    instr.incomings[pred] = resolve(value)
    for name in slots:
        promoted = function.var_allocas
        for uid, alloca in list(promoted.items()):
            if alloca.result.name == name:
                alloca.promoted = True
    return len(slots)
