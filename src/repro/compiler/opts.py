"""Conventional optimizations (the ``-O3`` analogue), in one place.

Constant folding, trivial-cast copy propagation, dead code elimination,
CFG cleanup (constant-branch folding, straight-line block merging), and
the full ``-O3`` composition (mem2reg + scalar-opt fixed point).  One
implementation serves every consumer: the baseline build runs
:func:`optimize_module_o3` on everything, and the call-graph optimization
of §4.4.5 runs :func:`optimize_o3` on provably-ROI-free functions —
erasing the variable↔IR mapping is only legal where PSEC provably cannot
care.

The module-level entry points are also registered as passes (``o3``,
``mem2reg``, ``cleanup``) so pipelines can name them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.lang import types as ct
from repro.ir.instructions import (
    AddrOffset,
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Instr,
    Jump,
    Load,
    Phi,
    ProbeAccess,
    ProbeClassify,
    ProbeEscape,
    Ret,
    RoiBegin,
    RoiEnd,
    Store,
)
from repro.ir.module import Block, Function, Module
from repro.ir.values import Const, Temp, Value
from repro.compiler.mem2reg import promote_allocas
from repro.passes.manager import Pass
from repro.passes.registry import register_pass

_FOLDABLE = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: int(a) << (int(b) & 63),
    "shr": lambda a, b: int(a) >> (int(b) & 63),
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
}

#: Instructions with side effects that DCE must never remove.
_EFFECTFUL = (Store, Call, Ret, Jump, Branch, RoiBegin, RoiEnd,
              ProbeAccess, ProbeClassify, ProbeEscape, Alloca)


def fold_constants(function: Function) -> int:
    """Fold constant BinOps/Casts and propagate the results.  Returns the
    number of instructions folded."""
    folded = 0
    replacements: Dict[str, Value] = {}

    def resolve(value: Value) -> Value:
        while isinstance(value, Temp) and value.name in replacements:
            value = replacements[value.name]
        return value

    for block in function.blocks:
        kept: List[Instr] = []
        for instr in block.instrs:
            for operand in list(instr.operands()):
                resolved = resolve(operand)
                if resolved is not operand:
                    instr.replace_operand(operand, resolved)
            if isinstance(instr, BinOp):
                lhs, rhs = instr.lhs, instr.rhs
                if (isinstance(lhs, Const) and isinstance(rhs, Const)
                        and instr.op in _FOLDABLE
                        and not (instr.op in ("div", "rem"))):
                    value = _FOLDABLE[instr.op](lhs.value, rhs.value)
                    replacements[instr.result.name] = Const(
                        value, instr.result.ty
                    )
                    folded += 1
                    continue
                # x + 0, x * 1, x - 0 identities.
                simplified = _identity(instr)
                if simplified is not None:
                    replacements[instr.result.name] = simplified
                    folded += 1
                    continue
            elif isinstance(instr, Cast):
                value = resolve(instr.value)
                if isinstance(value, Const):
                    if isinstance(instr.result.ty, ct.FloatType):
                        casted: object = float(value.value)
                    else:
                        casted = int(value.value)
                    replacements[instr.result.name] = Const(
                        casted, instr.result.ty
                    )
                    folded += 1
                    continue
                if type(value.ty) is type(instr.result.ty):
                    replacements[instr.result.name] = value
                    folded += 1
                    continue
            elif isinstance(instr, AddrOffset):
                base, index = instr.base, instr.index
                if (isinstance(index, Const) and index.value == 0
                        and instr.offset == 0 and isinstance(base, Temp)):
                    replacements[instr.result.name] = base
                    folded += 1
                    continue
            kept.append(instr)
        block.instrs = kept
    if replacements:
        for block in function.blocks:
            for instr in block.instrs:
                for operand in list(instr.operands()):
                    resolved = resolve(operand)
                    if resolved is not operand:
                        instr.replace_operand(operand, resolved)
    return folded


def _identity(instr: BinOp) -> Optional[Value]:
    lhs, rhs = instr.lhs, instr.rhs
    if instr.op == "add":
        if isinstance(rhs, Const) and rhs.value == 0:
            return lhs
        if isinstance(lhs, Const) and lhs.value == 0:
            return rhs
    if instr.op == "sub" and isinstance(rhs, Const) and rhs.value == 0:
        return lhs
    if instr.op == "mul":
        if isinstance(rhs, Const) and rhs.value == 1:
            return lhs
        if isinstance(lhs, Const) and lhs.value == 1:
            return rhs
    return None


def eliminate_dead_code(function: Function) -> int:
    """Remove pure instructions whose results are never used."""
    removed = 0
    changed = True
    while changed:
        changed = False
        used: Set[str] = set()
        for block in function.blocks:
            for instr in block.instrs:
                for operand in instr.operands():
                    if isinstance(operand, Temp):
                        used.add(operand.name)
                if isinstance(instr, Store) and isinstance(instr.value, Temp):
                    used.add(instr.value.name)
        for block in function.blocks:
            kept: List[Instr] = []
            for instr in block.instrs:
                if (not isinstance(instr, _EFFECTFUL)
                        and instr.result is not None
                        and instr.result.name not in used):
                    removed += 1
                    changed = True
                    continue
                kept.append(instr)
            block.instrs = kept
    return removed


def simplify_cfg(function: Function) -> int:
    """Fold constant branches, thread trivial jumps, drop dead blocks."""
    changes = 0
    for block in function.blocks:
        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.cond, Const):
            target = term.if_true if term.cond.value != 0 else term.if_false
            block.instrs[-1] = Jump(target, term.loc)
            changes += 1
        elif isinstance(term, Branch) and term.if_true is term.if_false:
            block.instrs[-1] = Jump(term.if_true, term.loc)
            changes += 1
    # Thread jumps through empty forwarding blocks (single Jump, no φ users).
    forwarding: Dict[Block, Block] = {}
    for block in function.blocks:
        if (len(block.instrs) == 1 and isinstance(block.instrs[0], Jump)
                and block is not function.entry):
            target = block.instrs[0].target
            if not any(isinstance(i, Phi) for i in target.instrs):
                forwarding[block] = target

    def final_target(block: Block) -> Block:
        seen = set()
        while block in forwarding and block not in seen:
            seen.add(block)
            block = forwarding[block]
        return block

    if forwarding:
        has_phis = any(
            isinstance(i, Phi) for b in function.blocks for i in b.instrs
        )
        if not has_phis:
            for block in function.blocks:
                term = block.terminator
                if isinstance(term, Jump):
                    new = final_target(term.target)
                    if new is not term.target:
                        term.target = new
                        changes += 1
                elif isinstance(term, Branch):
                    new_t = final_target(term.if_true)
                    new_f = final_target(term.if_false)
                    if new_t is not term.if_true or new_f is not term.if_false:
                        term.if_true = new_t
                        term.if_false = new_f
                        changes += 1
    before = len(function.blocks)
    function.remove_unreachable_blocks()
    changes += before - len(function.blocks)
    return changes


def optimize_function(function: Function) -> None:
    """Fixed-point driver over the scalar optimizations."""
    for _ in range(8):
        work = fold_constants(function)
        work += eliminate_dead_code(function)
        work += simplify_cfg(function)
        if work == 0:
            break


def optimize_o3(function: Function) -> None:
    """Full conventional optimization of one function (mem2reg + scalar
    fixed point).  Erases the variable↔IR mapping — see module docstring
    for when that is legal."""
    promote_allocas(function)
    optimize_function(function)
    function.conventionally_optimized = True


def optimize_module_o3(module: Module) -> None:
    for function in module.functions.values():
        optimize_o3(function)


# ---------------------------------------------------------------------------
# Registered passes
# ---------------------------------------------------------------------------


@register_pass
class O3Pass(Pass):
    """Module-wide conventional -O3: the baseline build's only pass."""

    name = "o3"
    mutates_ir = True

    def run(self, module, am, ctx) -> bool:
        optimize_module_o3(module)
        return True


@register_pass
class Mem2RegPass(Pass):
    """Full memory-to-register promotion of every eligible alloca."""

    name = "mem2reg"
    mutates_ir = True

    def run(self, module, am, ctx) -> bool:
        promoted = 0
        for function in module.functions.values():
            promoted += promote_allocas(function)
        return promoted > 0


@register_pass
class CleanupPass(Pass):
    """Scalar-opt fixed point (fold/DCE/CFG) on every function."""

    name = "cleanup"
    mutates_ir = True

    def run(self, module, am, ctx) -> bool:
        before = module.ir_stats()
        for function in module.functions.values():
            optimize_function(function)
        return module.ir_stats() != before
