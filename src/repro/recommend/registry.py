"""Recommender registry and ``--recommenders`` selection parsing.

The recommendation analogue of :mod:`repro.passes.registry`: every
recommendation generator registers under a stable string name; the set
of *extra* recommenders to run per ROI is then described as
comma-separated text à la ``-passes=``:

    ``"reduction_hint,privatization_hint"``

Aliases expand to predefined groups (``paper``, ``roles``, ``all``) and
a leading ``-`` removes a recommender from the selection built so far —
``"all,-privatization_hint"`` runs everything but one kind.  Unknown
entries raise :class:`~repro.errors.RecommendationError` listing the
registered names, in both plain and negated spellings (the ``--passes``
negation-error contract, applied here).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Type, Union

from repro.errors import RecommendationError

#: Version of the recommender registry's *semantics*: bump when a
#: registered recommender changes behaviour without changing its name,
#: so recommendation cache keys derived from
#: :func:`recommender_registry_fingerprint` stop matching old artifacts.
RECOMMENDER_REGISTRY_VERSION = 1

#: Selection used when a request names no ``--recommenders``: the
#: role-driven kinds ride along with the primary abstraction in the
#: recommendation doc (the human rendering is unaffected).
DEFAULT_SELECTION = "roles"


class Recommender:
    """One registered recommendation generator.

    Subclasses declare:

    - ``name`` — the registry key (also the ``kind`` of every
      recommendation the generator emits);
    - ``paper_name`` — the Table 1 row this recommender reproduces, or
      ``None`` for post-paper kinds (Table 1 is *regenerated* from these
      declarations — see :func:`table1_requirements`);
    - ``requirements`` — the :class:`~repro.abstractions.base.
      PsecRequirements` of the generator (which PSEC components it
      consumes);
    - ``role_driven`` — ``True`` for evidence-layer kinds that may
      decline to fire (``generate`` returns ``None`` when the ROI shows
      no matching roles).

    ``generate`` receives one ROI's :class:`~repro.recommend.evidence.
    Evidence` bundle and returns a :class:`~repro.abstractions.base.
    Recommendation` (or ``None``); ``payload`` returns the structured
    JSON view embedded next to the rendered text in the
    recommendation doc.
    """

    name: str = ""
    paper_name: Optional[str] = None
    requirements = None  # type: ignore[assignment]
    role_driven: bool = False

    def generate(self, evidence):
        raise NotImplementedError

    def payload(self, evidence, recommendation) -> Dict[str, object]:
        return {}


_RECOMMENDERS: Dict[str, Type[Recommender]] = {}
_ALIASES: Dict[str, List[str]] = {}


def register_recommender(cls: Type[Recommender]) -> Type[Recommender]:
    """Class decorator adding a :class:`Recommender` to the registry."""
    name = cls.name
    if not name:
        raise ValueError(f"recommender {cls!r} needs a name attribute")
    if name in _RECOMMENDERS:
        raise ValueError(f"recommender {name!r} registered twice")
    _RECOMMENDERS[name] = cls
    return cls


def register_alias(alias: str, names: Sequence[str]) -> None:
    """Register ``alias`` to expand to the given recommender names."""
    _ALIASES[alias] = list(names)


def registered_recommender_names() -> List[str]:
    _ensure_registered()
    return sorted(_RECOMMENDERS)


def registered_alias_names() -> List[str]:
    _ensure_registered()
    return sorted(_ALIASES)


def is_registered(name: str) -> bool:
    _ensure_registered()
    return name in _RECOMMENDERS


def create_recommender(name: str) -> Recommender:
    """Instantiate a registered recommender by name."""
    _ensure_registered()
    cls = _RECOMMENDERS.get(name)
    if cls is None:
        raise RecommendationError(_unknown_message(name))
    return cls()


def _unknown_message(name: str) -> str:
    return (
        f"unknown recommender {name!r}; registered recommenders: "
        + ", ".join(registered_recommender_names())
        + "; aliases: " + ", ".join(registered_alias_names())
    )


def _unknown_negation_message(target: str, token: str) -> str:
    """FaultPlan.parse-style message for ``-name`` with an unknown name."""
    return (
        f"unknown recommender {target!r} in negation {token!r} "
        f"(choose from registered recommenders "
        f"{registered_recommender_names()} "
        f"or aliases {registered_alias_names()})"
    )


def _ensure_registered() -> None:
    """The recommenders module registers its kinds at import time; make
    sure that happened before answering registry queries."""
    if not _RECOMMENDERS:
        import repro.recommend.recommenders  # noqa: F401  (registration)


def recommender_registry_fingerprint() -> str:
    """Digest of the registry's contents: registered recommender names,
    alias expansions, and :data:`RECOMMENDER_REGISTRY_VERSION`.

    Part of every ``recommend`` artifact key (:mod:`repro.session.keys`):
    registering, removing, or re-aliasing a recommender — or bumping the
    version for a behavioural change — invalidates cached recommendation
    docs without touching frontend, pipeline, or profile entries.
    """
    _ensure_registered()
    doc = {
        "version": RECOMMENDER_REGISTRY_VERSION,
        "recommenders": registered_recommender_names(),
        "aliases": {alias: _ALIASES[alias] for alias in sorted(_ALIASES)},
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def parse_selection(
    text: Union[str, Sequence[str], None],
) -> List[str]:
    """Parse a ``--recommenders`` selection into registered names.

    ``None`` means :data:`DEFAULT_SELECTION`.  ``text`` may already be a
    sequence of names (validated as-is).  In textual form, entries are
    comma-separated; an alias expands in place; ``-name`` removes every
    earlier occurrence of ``name`` (a registered recommender, or an
    alias — which removes every name in its expansion).  Unknown entries
    raise :class:`RecommendationError` listing the registered names.
    Duplicates collapse to their first occurrence.
    """
    _ensure_registered()
    if text is None:
        text = DEFAULT_SELECTION
    if isinstance(text, str):
        tokens = [t.strip() for t in text.split(",") if t.strip()]
    else:
        tokens = list(text)
    result: List[str] = []
    for token in tokens:
        if token.startswith("-"):
            target = token[1:]
            if target in _RECOMMENDERS:
                result = [n for n in result if n != target]
            elif target in _ALIASES:
                removed = set(_ALIASES[target])
                result = [n for n in result if n not in removed]
            else:
                raise RecommendationError(
                    _unknown_negation_message(target, token)
                )
        elif token in _ALIASES:
            result.extend(_ALIASES[token])
        elif token in _RECOMMENDERS:
            result.append(token)
        else:
            raise RecommendationError(_unknown_message(token))
    deduped: List[str] = []
    for name in result:
        if name not in deduped:
            deduped.append(name)
    return deduped


def table1_requirements() -> Dict[str, "object"]:
    """Regenerate Table 1 from the per-recommender declarations.

    Maps each registered recommender's ``paper_name`` to its
    ``requirements`` — the dict the hardcoded
    ``ABSTRACTION_REQUIREMENTS`` used to spell out (and the Table 1
    regeneration test now derives from here).
    """
    _ensure_registered()
    table = {}
    for name in registered_recommender_names():
        cls = _RECOMMENDERS[name]
        if cls.paper_name is not None:
            table[cls.paper_name] = cls.requirements
    return table
