"""Variable-role classification and container-level summaries.

The evidence layer between PSEC Sets and recommendation kinds, after
"On the Concept of Variable Roles and its Use in Software Analysis": a
variable's *role* in the ROI — how its value stream behaves — is what a
source-level hint should talk about, not its raw FSA letters.  Roles are
derived from the Sets plus static loop/induction facts:

``iterator``
    the loop-governing induction variable of the ROI's loop, or an
    inner-loop induction slot recognised by the trip-count matcher;
``counter``
    a reducible ``+`` update chain whose step is one constant — an
    accumulator whose increments are metronomic;
``accumulator``
    a reducible update chain (any OpenMP-supported operator) detected by
    the same matcher the ``reduction(...)`` clause generation uses;
``flag``
    a consulted variable whose in-region writes store nothing but (at
    most two distinct) constants;
``temporary``
    a Cloneable scalar that is neither Input nor Transfer and is never
    read after the region — pure per-invocation scratch.

Container summaries apply the same move one level up (after "From
Low-Level Pointers to High-Level Containers"): the per-element memory
PSEs of one allocation collapse into a single container verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.abstractions.base import describe_pse
from repro.abstractions.reductions import detect_reduction
from repro.analysis.loops import match_trip_count
from repro.ir.instructions import BinOp, Load, Store
from repro.ir.values import Const, Temp

#: Role names, in classification-precedence order.
ROLE_NAMES = ("iterator", "counter", "accumulator", "flag", "temporary")


@dataclass(frozen=True)
class RoleInfo:
    """One classified variable role."""

    key: Tuple
    name: str
    storage: str
    role: str
    detail: str

    def doc(self) -> Dict[str, object]:
        return {
            "pse": self.name,
            "key": list(self.key),
            "storage": self.storage,
            "role": self.role,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ContainerSummary:
    """One container's verdict over its per-element memory PSEs.

    ``letters`` histograms the elements by their (sorted) Set letters;
    ``verdict`` is the container-level collapse:

    - ``read-shared`` — every element is Input-only; share freely;
    - ``per-invocation-scratch`` — every element is Cloneable/Output
      with no Input or Transfer; privatizable per thread;
    - ``carried-dependence`` — every element carries Transfer state;
      serialize or partition;
    - ``uniform`` — elements agree on some other letter combination;
    - ``mixed`` / ``mixed-carried`` — elements disagree (``-carried``
      when at least one element transfers state).
    """

    obj_id: int
    name: str
    kind: str
    size: int
    elements: int
    letters: Dict[str, int]
    verdict: str

    @property
    def privatizable(self) -> bool:
        return self.verdict == "per-invocation-scratch"

    def doc(self) -> Dict[str, object]:
        return {
            "object": self.name,
            "obj_id": self.obj_id,
            "kind": self.kind,
            "size_bytes": self.size,
            "elements": self.elements,
            "letters": dict(sorted(self.letters.items())),
            "verdict": self.verdict,
        }


def classify_roles(evidence) -> List[RoleInfo]:
    """Classify every variable PSE of the ROI, sorted by variable name.

    Precedence when several patterns match: iterator, then counter /
    accumulator, then flag, then temporary.  Variables matching no
    pattern carry no role and are omitted.
    """
    function = evidence.function
    region = evidence.region
    roi = evidence.roi
    psec, asmt = evidence.psec, evidence.asmt

    slot_by_uid = {}
    uid_by_slot = {}
    if function is not None:
        for uid, alloca in function.var_allocas.items():
            if not alloca.promoted:
                slot_by_uid[uid] = alloca.result
                uid_by_slot[id(alloca.result)] = uid

    governing_uid = roi.induction_var.uid if roi.induction_var else None
    iterator_uids: Set[int] = set()
    if governing_uid is not None:
        iterator_uids.add(governing_uid)
    if function is not None and region is not None:
        for loop in evidence.loops:
            if loop.header not in region.blocks:
                continue
            trip = match_trip_count(function, loop, None)
            if trip is None:
                continue
            uid = uid_by_slot.get(id(trip.induction_alloca))
            if uid is not None:
                iterator_uids.add(uid)

    read_after = evidence.read_after
    roles: List[RoleInfo] = []
    seen_uids: Set[int] = set()
    for key, entry in sorted(psec.entries.items(), key=lambda kv: str(kv[0])):
        letters = entry.letters
        if not letters or key[0] != "var" or entry.var is None:
            continue
        desc = describe_pse(key, psec, asmt)
        uid = entry.var.uid
        seen_uids.add(uid)
        slot = slot_by_uid.get(uid)

        if uid in iterator_uids:
            detail = ("loop-governing induction variable"
                      if uid == governing_uid
                      else "inner-loop induction variable")
            roles.append(RoleInfo(key, desc.name, desc.storage,
                                  "iterator", detail))
            continue

        if slot is not None and region is not None:
            op = detect_reduction(function, region, slot)
            if op is not None:
                step = (_constant_update_step(region, slot)
                        if op == "+" else None)
                if step is not None:
                    roles.append(RoleInfo(
                        key, desc.name, desc.storage, "counter",
                        f"'+' update with constant step {step}",
                    ))
                else:
                    roles.append(RoleInfo(
                        key, desc.name, desc.storage, "accumulator",
                        f"reducible '{op}' update chain",
                    ))
                continue
            values = _constant_store_values(region, slot)
            if values is not None and len(set(values)) <= 2:
                spelled = ", ".join(
                    str(v) for v in sorted(set(values), key=repr)
                )
                roles.append(RoleInfo(
                    key, desc.name, desc.storage, "flag",
                    f"writes only constants {{{spelled}}}",
                ))
                continue

        if ("C" in letters and "I" not in letters and "T" not in letters
                and uid not in read_after):
            roles.append(RoleInfo(
                key, desc.name, desc.storage, "temporary",
                "written before read each invocation; "
                "never read after the region",
            ))

    # The loop-governing induction variable often has no dynamic entry
    # (its reads are hoisted / statically claimed), but it is the ROI's
    # iterator by construction — the same grounds the pragma generator
    # privatizes it on.
    if governing_uid is not None and governing_uid not in seen_uids:
        var = roi.induction_var
        roles.append(RoleInfo(
            ("var", None), var.name, var.storage, "iterator",
            "loop-governing induction variable",
        ))
    roles.sort(key=lambda role: (role.name, role.role))
    return roles


def summarize_containers(evidence) -> List[ContainerSummary]:
    """Collapse per-element memory PSEs into one verdict per container."""
    psec, asmt = evidence.psec, evidence.asmt
    histograms: Dict[int, Dict[str, int]] = {}
    for key, entry in psec.entries.items():
        if key[0] != "mem":
            continue
        letters = entry.letters
        if not letters:
            continue
        spelled = "".join(sorted(letters))
        per_object = histograms.setdefault(key[1], {})
        per_object[spelled] = per_object.get(spelled, 0) + 1
    summaries: List[ContainerSummary] = []
    for obj_id, histogram in histograms.items():
        meta = asmt.get(obj_id)
        summaries.append(ContainerSummary(
            obj_id=obj_id,
            name=meta.display_name if meta else f"obj#{obj_id}",
            kind=meta.kind if meta else "?",
            size=meta.size if meta else 0,
            elements=sum(histogram.values()),
            letters=histogram,
            verdict=_container_verdict(histogram),
        ))
    summaries.sort(key=lambda s: (s.name, s.obj_id))
    return summaries


def _container_verdict(histogram: Dict[str, int]) -> str:
    spellings = set(histogram)
    if len(spellings) == 1:
        letters = next(iter(spellings))
        if letters == "I":
            return "read-shared"
        if "T" in letters:
            return "carried-dependence"
        if set(letters) <= {"C", "O"}:
            return "per-invocation-scratch"
        return "uniform"
    if any("T" in letters for letters in spellings):
        return "mixed-carried"
    return "mixed"


def _region_slot_accesses(region, slot):
    loads: List[Load] = []
    stores: List[Store] = []
    binop_by_result: Dict[str, BinOp] = {}
    for _, _, instr in region.instructions():
        if isinstance(instr, Load) and instr.ptr is slot:
            loads.append(instr)
        elif isinstance(instr, Store) and instr.ptr is slot:
            stores.append(instr)
        elif isinstance(instr, BinOp):
            binop_by_result[instr.result.name] = instr
    return loads, stores, binop_by_result


def _constant_update_step(region, slot) -> Optional[int]:
    """The single constant ``+`` step of the slot's updates, or None."""
    loads, stores, binop_by_result = _region_slot_accesses(region, slot)
    if not stores:
        return None
    load_results = {load.result.name for load in loads}
    steps: Set[int] = set()
    for store in stores:
        if not isinstance(store.value, Temp):
            return None
        binop = binop_by_result.get(store.value.name)
        if binop is None or binop.op != "add":
            return None
        others = [v for v in (binop.lhs, binop.rhs)
                  if not (isinstance(v, Temp) and v.name in load_results)]
        if len(others) != 1 or not isinstance(others[0], Const) \
                or not isinstance(others[0].value, int):
            return None
        steps.add(others[0].value)
    return steps.pop() if len(steps) == 1 else None


def _constant_store_values(region, slot) -> Optional[List[object]]:
    """Values of the slot's in-region writes when *all* are constants
    and the slot is also consulted (loaded) in the region."""
    loads, stores, _ = _region_slot_accesses(region, slot)
    if not stores or not loads:
        return None
    values: List[object] = []
    for store in stores:
        if not isinstance(store.value, Const):
            return None
        values.append(store.value.value)
    return values
