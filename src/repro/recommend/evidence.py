"""The Evidence bundle: everything a recommender may consult, in one place.

A recommender sees one ROI's worth of evidence: the dynamic side (the
ROI's PSEC, the ASMT) and the static side (the enclosing function, the
ROI region, loops, dominators, the call graph) — the latter fetched
through a shared :class:`~repro.passes.manager.AnalysisManager`, so ten
recommenders over five ROIs compute each analysis once, exactly like the
pass pipeline does.

On top of the raw facts, the bundle exposes the role-classification
layer (:mod:`repro.recommend.roles`): per-variable roles and
container-level summaries, computed lazily and cached per ROI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.passes.manager import AnalysisManager


@dataclass
class Evidence:
    """One ROI's evidence bundle.

    ``runtime`` duck-types ``CarmotRuntime`` — a live runtime on a cache
    miss, a deserialized :class:`~repro.runtime.psec_json.Profile` on a
    hit; both expose ``psecs``/``asmt``/``module``.
    """

    module: object
    roi: object
    psec: object
    asmt: object
    am: AnalysisManager
    _roles: Optional[List[object]] = field(default=None, repr=False)
    _containers: Optional[List[object]] = field(default=None, repr=False)

    @classmethod
    def gather(cls, runtime, roi_id: int,
               am: Optional[AnalysisManager] = None) -> "Evidence":
        """Build the bundle for one profiled ROI.

        Pass a shared ``am`` when generating for several ROIs of one
        module so module-scoped analyses are computed once.
        """
        module = runtime.module
        roi = module.rois[roi_id]
        return cls(
            module=module,
            roi=roi,
            psec=runtime.psecs[roi_id],
            asmt=runtime.asmt,
            am=am if am is not None else AnalysisManager(module),
        )

    # -- static facts (via the AnalysisManager) -----------------------------

    @property
    def function(self):
        """The enclosing function, or None for a detached profile."""
        return self.module.functions.get(self.roi.function)

    @property
    def region(self):
        """The ROI's static :class:`~repro.analysis.regions.RoiRegion`."""
        return self.am.get("roi-regions").get(self.roi.roi_id)

    @property
    def loops(self):
        """Natural loops of the enclosing function (innermost-last)."""
        function = self.function
        if function is None:
            return []
        return self.am.get("loops", function)

    @property
    def dominators(self):
        function = self.function
        if function is None:
            return None
        return self.am.get("dominators", function)

    @property
    def callgraph(self):
        return self.am.get("callgraph")

    @property
    def read_after(self):
        """uids of locals/params that may be read after the region."""
        function, region = self.function, self.region
        if function is None or region is None:
            return set()
        return self.am.get("liveness", function, region)

    # -- role evidence (lazily classified, cached) --------------------------

    @property
    def roles(self) -> List[object]:
        """Per-variable :class:`~repro.recommend.roles.RoleInfo`, sorted
        by variable name."""
        if self._roles is None:
            from repro.recommend.roles import classify_roles
            self._roles = classify_roles(self)
        return self._roles

    @property
    def containers(self) -> List[object]:
        """Container-level :class:`~repro.recommend.roles.
        ContainerSummary`, one per object with memory PSEs."""
        if self._containers is None:
            from repro.recommend.roles import summarize_containers
            self._containers = summarize_containers(self)
        return self._containers

    def roles_by_kind(self) -> Dict[str, List[object]]:
        """role name -> RoleInfo list (only roles that occurred)."""
        grouped: Dict[str, List[object]] = {}
        for role in self.roles:
            grouped.setdefault(role.role, []).append(role)
        return grouped
