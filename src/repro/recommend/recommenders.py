"""Registered recommenders: the paper's four generators plus role-driven kinds.

The four paper abstractions (§3.2) delegate to the untouched generator
functions in :mod:`repro.abstractions` — their rendered output is pinned
byte-exactly by the golden tests — and declare their Table 1 row
(``paper_name`` + ``requirements``) on the class, which is where
:func:`repro.recommend.registry.table1_requirements` regenerates the
table from.

The role-driven kinds consume the :mod:`repro.recommend.roles` evidence
layer and may decline to fire (``generate`` returns ``None`` when the
ROI shows no matching roles):

``reduction_hint``
    accumulator/counter roles → suggest a reduction clause or per-thread
    partials merged after the loop;
``privatization_hint``
    iterator/flag/temporary roles and per-invocation-scratch containers
    → suggest per-thread copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.abstractions.base import PsecRequirements, Recommendation
from repro.abstractions.openmp_for import generate_parallel_for
from repro.abstractions.openmp_task import generate_task
from repro.abstractions.smart_pointers import generate_smart_pointers
from repro.abstractions.stats import generate_stats
from repro.recommend.registry import (
    Recommender,
    register_alias,
    register_recommender,
)
from repro.recommend.roles import ContainerSummary, RoleInfo


# -- the paper's four, ported onto the registry ------------------------------


@register_recommender
class ParallelForRecommender(Recommender):
    name = "parallel_for"
    paper_name = "omp_parallel_for"
    requirements = PsecRequirements(True, True, False)

    def generate(self, evidence):
        return generate_parallel_for(
            evidence.module, evidence.psec, evidence.asmt, evidence.roi
        )

    def payload(self, evidence, rec) -> Dict[str, object]:
        return {
            "pragma": rec.pragma_text(),
            "private": list(rec.private),
            "firstprivate": list(rec.firstprivate),
            "lastprivate": list(rec.lastprivate),
            "shared": list(rec.shared),
            "reductions": [[op, name] for op, name in sorted(rec.reductions)],
            "ordered": [
                {"pse": advice.pse_name, "sites": list(advice.use_sites)}
                for advice in rec.ordered
            ],
            "clones": [
                {"object": clone.object_name, "alloc_loc": clone.alloc_loc,
                 "written_elements": clone.written_elements}
                for clone in rec.clones
            ],
        }


@register_recommender
class TaskRecommender(Recommender):
    name = "task"
    paper_name = "omp_task"
    requirements = PsecRequirements(True, False, False)

    def generate(self, evidence):
        return generate_task(
            evidence.module, evidence.psec, evidence.asmt, evidence.roi
        )

    def payload(self, evidence, rec) -> Dict[str, object]:
        return {
            "pragma": rec.pragma_text(),
            "depend_in": list(rec.depend_in),
            "depend_out": list(rec.depend_out),
        }


@register_recommender
class SmartPointersRecommender(Recommender):
    name = "smart_pointers"
    paper_name = "smart_pointers"
    requirements = PsecRequirements(True, False, True)

    def generate(self, evidence):
        return generate_smart_pointers(
            evidence.module, evidence.psec, evidence.asmt, evidence.roi
        )

    def payload(self, evidence, rec) -> Dict[str, object]:
        return {
            "cycles": [
                {"members": list(cycle.members),
                 "weak_source": cycle.weak_source,
                 "weak_target": cycle.weak_target,
                 "weak_store_loc": cycle.weak_store_loc}
                for cycle in rec.cycles
            ],
        }


@register_recommender
class StatsRecommender(Recommender):
    name = "stats"
    paper_name = "stats"
    requirements = PsecRequirements(True, False, False)

    def generate(self, evidence):
        return generate_stats(
            evidence.module, evidence.psec, evidence.asmt, evidence.roi
        )

    def payload(self, evidence, rec) -> Dict[str, object]:
        return {
            "input": list(rec.input_class),
            "output": list(rec.output_class),
            "state": list(rec.state_class),
            "localize": list(rec.localize),
        }


# -- role-driven kinds -------------------------------------------------------


@dataclass
class ReductionHintRecommendation(Recommendation):
    """Accumulator/counter roles spelled as reduction guidance."""

    hints: List[RoleInfo] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"ROI {self.roi.name} ({self.roi.loc}): "
            "reduction structure detected:"
        ]
        for role in self.hints:
            lines.append(
                f"  - {role.name} ({role.role}): {role.detail} -> "
                "reduction clause or per-thread partials merged after "
                "the loop"
            )
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


@register_recommender
class ReductionHintRecommender(Recommender):
    name = "reduction_hint"
    requirements = PsecRequirements(True, False, False)
    role_driven = True

    def generate(self, evidence) -> Optional[ReductionHintRecommendation]:
        hints = [role for role in evidence.roles
                 if role.role in ("accumulator", "counter")]
        if not hints:
            return None
        return ReductionHintRecommendation(roi=evidence.roi, hints=hints)

    def payload(self, evidence, rec) -> Dict[str, object]:
        return {"roles": [role.doc() for role in rec.hints]}


@dataclass
class PrivatizationHintRecommendation(Recommendation):
    """Iterator/flag/temporary roles and scratch containers spelled as
    per-thread privatization guidance."""

    scalars: List[RoleInfo] = field(default_factory=list)
    containers: List[ContainerSummary] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"ROI {self.roi.name} ({self.roi.loc}): "
            "privatization candidates:"
        ]
        for role in self.scalars:
            lines.append(f"  - {role.name} ({role.role}): {role.detail}")
        for container in self.containers:
            lines.append(
                f"  - container {container.name} ({container.kind}, "
                f"{container.elements} elements): per-invocation scratch; "
                "give each thread a private copy"
            )
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


@register_recommender
class PrivatizationHintRecommender(Recommender):
    name = "privatization_hint"
    requirements = PsecRequirements(True, False, False)
    role_driven = True

    def generate(self, evidence) -> Optional[PrivatizationHintRecommendation]:
        scalars = [role for role in evidence.roles
                   if role.role in ("iterator", "flag", "temporary")]
        containers = [container for container in evidence.containers
                      if container.privatizable]
        if not scalars and not containers:
            return None
        return PrivatizationHintRecommendation(
            roi=evidence.roi, scalars=scalars, containers=containers
        )

    def payload(self, evidence, rec) -> Dict[str, object]:
        return {
            "roles": [role.doc() for role in rec.scalars],
            "containers": [container.doc() for container in rec.containers],
        }


register_alias("paper", ["parallel_for", "task", "smart_pointers", "stats"])
register_alias("roles", ["reduction_hint", "privatization_hint"])
register_alias(
    "all",
    ["parallel_for", "task", "smart_pointers", "stats",
     "reduction_hint", "privatization_hint"],
)
