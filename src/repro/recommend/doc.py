"""Schema-versioned RecommendationDoc construction.

One document per profiled program: for every ROI, the primary
recommendation (the abstraction named in the pragma or forced by the
request), the extra recommendations the selection asked for, and the
role/container evidence both were derived from.  The document is plain
canonical JSON — it is what ``repro recommend --json`` embeds, what the
daemon ships, and what the session caches under the ``recommend``
artifact kind (keyed on the profile digest, so a warm doc is
byte-identical to a cold one).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro._version import RECOMMEND_SCHEMA_VERSION
from repro.errors import RecommendationError
from repro.passes.manager import AnalysisManager
from repro.recommend.evidence import Evidence
from repro.recommend.registry import create_recommender, parse_selection

#: The ``format`` marker of every recommendation doc.
RECOMMEND_DOC_FORMAT = "repro-recommendations"


def generate(runtime, roi_id: int, abstraction: Optional[str] = None,
             am: Optional[AnalysisManager] = None):
    """Generate the primary recommendation for one profiled ROI.

    The registry-backed engine behind ``repro.abstractions.recommend``:
    ``abstraction`` overrides the one named in the ROI's pragma; an
    unknown name raises :class:`RecommendationError` listing the
    registered recommender names.
    """
    module = runtime.module
    if roi_id not in module.rois:
        raise RecommendationError(f"unknown ROI id {roi_id}")
    roi = module.rois[roi_id]
    chosen = abstraction or roi.abstraction
    if chosen is None:
        raise RecommendationError(
            f"ROI {roi.name} names no abstraction; pass one explicitly"
        )
    recommender = create_recommender(chosen)
    if roi_id not in runtime.psecs:
        raise RecommendationError(
            f"ROI {roi.name} was never invoked; no PSEC to recommend from"
        )
    evidence = Evidence.gather(runtime, roi_id, am=am)
    recommendation = recommender.generate(evidence)
    if recommendation is None:
        raise RecommendationError(
            f"recommender {chosen!r} produced no recommendation for "
            f"ROI {roi.name}"
        )
    return recommendation


def build_recommendation_doc(
    runtime,
    abstraction: Optional[str] = None,
    recommender_names: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """The RecommendationDoc for every ROI of a profiled program.

    ``recommender_names`` is the parsed ``--recommenders`` selection
    (``None`` means the default selection); ``abstraction`` overrides
    every ROI's pragma.  Primary generation failures propagate (exactly
    like the pre-registry path); an *extra* recommender that raises is
    recorded under the ROI's ``skipped`` list instead — an inapplicable
    ride-along must not sink the document.
    """
    names: List[str] = (
        parse_selection(None) if recommender_names is None
        else list(recommender_names)
    )
    module = runtime.module
    am = AnalysisManager(module)
    rois: List[Dict[str, object]] = []
    for roi_id, roi in sorted(module.rois.items()):
        chosen = abstraction or roi.abstraction
        evidence = (Evidence.gather(runtime, roi_id, am=am)
                    if roi_id in runtime.psecs else None)
        rendered: Optional[str] = None
        recommendations: List[Dict[str, object]] = []
        skipped: List[Dict[str, object]] = []
        if chosen is not None:
            recommendation = generate(runtime, roi_id, chosen, am=am)
            recommender = create_recommender(chosen)
            rendered = recommendation.render()
            recommendations.append({
                "kind": chosen,
                "primary": True,
                "role_driven": recommender.role_driven,
                "rendered": rendered,
                "data": recommender.payload(evidence, recommendation),
            })
        if evidence is not None:
            for name in names:
                if name == chosen:
                    continue
                recommender = create_recommender(name)
                try:
                    recommendation = recommender.generate(evidence)
                except RecommendationError as error:
                    skipped.append({"kind": name, "reason": str(error)})
                    continue
                if recommendation is None:
                    continue
                recommendations.append({
                    "kind": name,
                    "primary": False,
                    "role_driven": recommender.role_driven,
                    "rendered": recommendation.render(),
                    "data": recommender.payload(evidence, recommendation),
                })
        rois.append({
            "id": roi_id,
            "name": roi.name,
            "abstraction": chosen,
            "rendered": rendered,
            "roles": [role.doc() for role in evidence.roles]
            if evidence is not None else [],
            "containers": [c.doc() for c in evidence.containers]
            if evidence is not None else [],
            "recommendations": recommendations,
            "skipped": skipped,
        })
    return {
        "format": RECOMMEND_DOC_FORMAT,
        "version": RECOMMEND_SCHEMA_VERSION,
        "recommenders": names,
        "rois": rois,
    }
