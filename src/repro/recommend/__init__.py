"""Registry-driven recommendation stack: PSEC evidence → source advice.

The recommendation analogue of :mod:`repro.passes`: generators register
under string names (:mod:`repro.recommend.registry`), consume one ROI's
:class:`~repro.recommend.evidence.Evidence` bundle (PSEC + ASMT + the
shared analyses, plus the :mod:`repro.recommend.roles` classification
layer), and emit into a schema-versioned RecommendationDoc
(:mod:`repro.recommend.doc`) that the session caches as the
``recommend`` artifact kind.
"""

from repro.recommend.doc import (
    RECOMMEND_DOC_FORMAT,
    build_recommendation_doc,
    generate,
)
from repro.recommend.evidence import Evidence
from repro.recommend.registry import (
    DEFAULT_SELECTION,
    RECOMMENDER_REGISTRY_VERSION,
    Recommender,
    create_recommender,
    is_registered,
    parse_selection,
    recommender_registry_fingerprint,
    register_alias,
    register_recommender,
    registered_alias_names,
    registered_recommender_names,
    table1_requirements,
)
from repro.recommend.roles import (
    ROLE_NAMES,
    ContainerSummary,
    RoleInfo,
    classify_roles,
    summarize_containers,
)

__all__ = [
    "RECOMMEND_DOC_FORMAT",
    "build_recommendation_doc",
    "generate",
    "Evidence",
    "DEFAULT_SELECTION",
    "RECOMMENDER_REGISTRY_VERSION",
    "Recommender",
    "create_recommender",
    "is_registered",
    "parse_selection",
    "recommender_registry_fingerprint",
    "register_alias",
    "register_recommender",
    "registered_alias_names",
    "registered_recommender_names",
    "table1_requirements",
    "ROLE_NAMES",
    "ContainerSummary",
    "RoleInfo",
    "classify_roles",
    "summarize_containers",
]
