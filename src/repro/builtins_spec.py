"""Declarations of MiniC builtin ("library") functions.

This registry is the single source of truth shared by semantic analysis,
lowering, and the VM.  Builtins model the *precompiled libraries* of the
paper: their bodies are native (Python) and therefore invisible to the
CARMOT compiler.  Any PSE accesses they perform can only be observed by the
Pintool stand-in (:mod:`repro.pin`), which is exactly the situation §4.5
describes.  Builtins flagged ``touches_memory=False`` (pure math, I/O of
scalars) never access tracked program memory, so the Pin-reduction
optimization can drop their gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.lang import types as ct

_CHAR_PTR = ct.PointerType(ct.CHAR)
_INT_PTR = ct.PointerType(ct.INT)
_FLOAT_PTR = ct.PointerType(ct.FLOAT)


@dataclass(frozen=True)
class BuiltinSpec:
    """Signature and behaviour class of one builtin function.

    ``base_cost`` is the cost-model charge for executing the builtin's
    native body once, excluding per-byte work which the VM adds per call.
    ``touches_memory`` marks builtins whose native body reads or writes
    program memory (and must therefore be Pin-traced inside an ROI);
    ``allocates`` marks the heap allocator entry points.
    """

    name: str
    return_type: ct.Type
    param_types: Tuple[ct.Type, ...]
    base_cost: int = 4
    touches_memory: bool = False
    allocates: bool = False
    variadic_floats: bool = False

    @property
    def function_type(self) -> ct.FunctionType:
        return ct.FunctionType(self.return_type, self.param_types)


def _spec(*args, **kwargs) -> BuiltinSpec:
    return BuiltinSpec(*args, **kwargs)


BUILTINS: Dict[str, BuiltinSpec] = {
    spec.name: spec
    for spec in [
        # Memory management.
        _spec("malloc", _CHAR_PTR, (ct.INT,), base_cost=20, allocates=True),
        _spec("calloc", _CHAR_PTR, (ct.INT, ct.INT), base_cost=24, allocates=True),
        _spec("free", ct.VOID, (_CHAR_PTR,), base_cost=12),
        # Precompiled memory routines (Pin-traced inside ROIs).
        _spec("memcpy", ct.VOID, (_CHAR_PTR, _CHAR_PTR, ct.INT), base_cost=8,
              touches_memory=True),
        _spec("memset", ct.VOID, (_CHAR_PTR, ct.INT, ct.INT), base_cost=8,
              touches_memory=True),
        _spec("memmove", ct.VOID, (_CHAR_PTR, _CHAR_PTR, ct.INT), base_cost=10,
              touches_memory=True),
        _spec("qsort_int", ct.VOID, (_INT_PTR, ct.INT), base_cost=16,
              touches_memory=True),
        _spec("sum_float_array", ct.FLOAT, (_FLOAT_PTR, ct.INT), base_cost=8,
              touches_memory=True),
        _spec("strlen", ct.INT, (_CHAR_PTR,), base_cost=6, touches_memory=True),
        # Math (pure, never Pin-traced).
        _spec("sqrt", ct.FLOAT, (ct.FLOAT,), base_cost=6),
        _spec("exp", ct.FLOAT, (ct.FLOAT,), base_cost=8),
        _spec("log", ct.FLOAT, (ct.FLOAT,), base_cost=8),
        _spec("sin", ct.FLOAT, (ct.FLOAT,), base_cost=8),
        _spec("cos", ct.FLOAT, (ct.FLOAT,), base_cost=8),
        _spec("pow", ct.FLOAT, (ct.FLOAT, ct.FLOAT), base_cost=10),
        _spec("fabs", ct.FLOAT, (ct.FLOAT,), base_cost=2),
        _spec("floor", ct.FLOAT, (ct.FLOAT,), base_cost=2),
        _spec("fmin", ct.FLOAT, (ct.FLOAT, ct.FLOAT), base_cost=2),
        _spec("fmax", ct.FLOAT, (ct.FLOAT, ct.FLOAT), base_cost=2),
        _spec("abs", ct.INT, (ct.INT,), base_cost=2),
        _spec("imin", ct.INT, (ct.INT, ct.INT), base_cost=2),
        _spec("imax", ct.INT, (ct.INT, ct.INT), base_cost=2),
        _spec("float_of_int", ct.FLOAT, (ct.INT,), base_cost=1),
        _spec("int_of_float", ct.INT, (ct.FLOAT,), base_cost=1),
        # Deterministic pseudo-random source (replaces benchmark inputs).
        _spec("rand_seed", ct.VOID, (ct.INT,), base_cost=2),
        _spec("rand_int", ct.INT, (ct.INT,), base_cost=4),
        _spec("rand_float", ct.FLOAT, (), base_cost=4),
        # Scalar I/O (collected by the VM, not printed).
        _spec("print_int", ct.VOID, (ct.INT,), base_cost=4),
        _spec("print_float", ct.VOID, (ct.FLOAT,), base_cost=4),
        _spec("print_str", ct.VOID, (_CHAR_PTR,), base_cost=4, touches_memory=True),
    ]
}


def is_builtin(name: str) -> bool:
    return name in BUILTINS


def builtin(name: str) -> BuiltinSpec:
    return BUILTINS[name]
