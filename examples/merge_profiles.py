#!/usr/bin/env python3
"""§4.2: combining PSECs from multiple runs.

CARMOT profiles one execution at a time; covering more inputs means running
again and merging PSECs by set union — with the one conservative exception
that Cloneable ⊔ Transfer = Transfer.  This example profiles a kernel under
two inputs whose access patterns differ (under input B a cross-iteration
RAW appears) and shows the merged classification."""

from repro.compiler import compile_carmot
from repro.runtime import merge_psecs

TEMPLATE = """
int buffer[16];

int kernel(int stride) {
  int checksum = 0;
  for (int i = 0; i < 16; ++i) {
    #pragma carmot roi abstraction(parallel_for)
    {
      int src = (i + stride) % 16;
      int value = buffer[src];
      buffer[i] = value + i;
      checksum += value;
    }
  }
  return checksum;
}

int main() {
  for (int k = 0; k < 16; ++k) buffer[k] = k;
  print_int(kernel(@STRIDE@));
  return 0;
}
"""


def profile(stride: int):
    source = TEMPLATE.replace("@STRIDE@", str(stride))
    program = compile_carmot(source, name=f"kernel_stride{stride}")
    _, runtime = program.run()
    return runtime.psecs[0]


def summarize(label, psec):
    sets = psec.sets()
    counts = {name: len(keys) for name, keys in sets.items()}
    print(f"{label:14s} input={counts['input']:3d} output={counts['output']:3d}"
          f" cloneable={counts['cloneable']:3d} transfer={counts['transfer']:3d}")


def main() -> None:
    # stride 0: each iteration reads and writes only buffer[i] — no
    # cross-iteration RAW.  stride 15: iteration i reads buffer[i-1],
    # written by the previous iteration — Transfer appears.
    run_a = profile(0)
    run_b = profile(15)
    merged = merge_psecs(run_a, run_b)
    summarize("run A (s=0)", run_a)
    summarize("run B (s=15)", run_b)
    summarize("merged", merged)
    merged.check_invariants()
    print("\nmerged PSEC honours C ∩ T = ∅: any element Cloneable in run A"
          "\nbut Transfer in run B is conservatively Transfer (§4.2).")


if __name__ == "__main__":
    main()
