#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1, end to end.

Compile a MiniC program whose loop body is marked as a Region Of Interest,
profile it with CARMOT, and print the generated ``#pragma omp parallel for``
recommendation.  Expected classification (§2.2): ``a``/``b`` shared (only
read), ``x``/``i`` private (written before read each iteration), and ``y``
in the Transfer set — its division update is not reducible, so its
statement must go into a critical/ordered section.
"""

from repro.abstractions import recommend
from repro.compiler import compile_baseline, compile_carmot

FIGURE1 = """
int work(int a, int b) {
  int i, x, y;
  y = 42;
  for (i = 0; i < 10; ++i) {
    #pragma carmot roi abstraction(parallel_for)
    {
      x = i / (a + b);
      y /= a * x + b;
    }
  }
  return y;
}

int main() {
  print_int(work(3, 4));
  return 0;
}
"""


def main() -> None:
    # 1. The baseline build ("clang -O3"): the overhead denominator.
    baseline = compile_baseline(FIGURE1, name="figure1")
    base_result, _ = baseline.run()
    print(f"program output : {base_result.output}")
    print(f"baseline cost  : {base_result.cost} units")

    # 2. The CARMOT build: instrumented with the PSEC-specific
    #    optimizations of §4.4, profiled by the co-designed runtime.
    program = compile_carmot(FIGURE1, name="figure1")
    result, runtime = program.run()
    print(f"carmot cost    : {result.cost} units "
          f"({result.cost / base_result.cost:.1f}x overhead)")

    # 3. The PSEC of the ROI: the four Sets of §3.1.
    psec = runtime.psecs[0]
    print("\nPSEC sets:")
    for set_name, keys in psec.sets().items():
        names = sorted(
            psec.entries[k].var.name if psec.entries[k].var else str(k)
            for k in keys
        )
        print(f"  {set_name:9s}: {', '.join(names) or '-'}")

    # 4. The abstraction recommendation (§3.2).
    print("\n" + recommend(runtime, 0).render())


if __name__ == "__main__":
    main()
