#!/usr/bin/env python3
"""Figure 9 / §5.2: finding reference cycles before adopting smart pointers.

Profiles the ``nab`` workload port with the whole program as the ROI (the
§5.2 methodology), prints the CARMOT-identified molecule→strand→residue→atom
reference cycle with the weak-pointer suggestion, and runs the leak
experiment: how many bytes would still leak under reference counting before
and after breaking the reported cycle.
"""

from repro.abstractions import recommend
from repro.compiler import compile_carmot
from repro.harness import nab_leak_experiment
from repro.workloads import workload


def main() -> None:
    nab = workload("nab")
    source = nab.source(nab.test_params, use_case="cycles")
    program = compile_carmot(source, name="nab")
    _, runtime = program.run()

    roi_id = next(rid for rid, roi in program.module.rois.items()
                  if roi.abstraction == "smart_pointers")
    recommendation = recommend(runtime, roi_id)
    print(recommendation.render())

    psec = runtime.psecs[roi_id]
    print(f"\nreachability graph: {psec.reachability.node_count} nodes, "
          f"{psec.reachability.edge_count} edges")
    for advice in recommendation.cycles:
        print("\ncycle members (allocation callstacks):")
        for name, stack in zip(advice.members, advice.member_callstacks):
            chain = " <- ".join(reversed(stack)) or "?"
            print(f"  {name:24s} allocated via {chain}")

    report = nab_leak_experiment()
    print("\nleak experiment (reference-size input, cf. §5.2):")
    print(f"  bytes leaked before the fix : {report.leaked_bytes_before}")
    print(f"  bytes held alive by cycles  : {report.cycle_held_bytes}")
    print(f"  bytes leaked after the fix  : {report.leaked_bytes_after}")
    print(f"  reduction                   : {report.reduction_percent:.1f}%"
          f"  (paper: 44.6%)")


if __name__ == "__main__":
    main()
