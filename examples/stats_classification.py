#!/usr/bin/env python3
"""§5.3: generating the STATS Input-Output-State abstraction.

The STATS compiler parallelizes nondeterministic programs if the programmer
classifies the PSEs of the state-dependence region into Input (only read),
Output (written first), and State (read then written).  CARMOT generates
the classes automatically from the PSEC — here on a small annealing-style
kernel whose running ``best`` score is the State-class PSE.
"""

from repro.abstractions import recommend
from repro.compiler import compile_carmot

SOURCE = """
float weights[32];
float best = 1000000.0;
float last_probe = 0.0;

void anneal(int steps) {
  for (int s = 0; s < steps; ++s) {
    #pragma carmot roi abstraction(stats) name(state_dependence)
    {
      float probe = 0.0;
      for (int k = 0; k < 32; ++k) {
        probe += weights[k] * rand_float();
      }
      last_probe = probe;
      if (probe < best) {
        best = probe;
      }
    }
  }
}

int main() {
  rand_seed(5);
  for (int k = 0; k < 32; ++k) weights[k] = rand_float();
  anneal(40);
  print_float(best);
  return 0;
}
"""


def main() -> None:
    program = compile_carmot(SOURCE, name="stats_demo")
    _, runtime = program.run()
    roi_id = next(rid for rid, roi in program.module.rois.items()
                  if roi.abstraction == "stats")
    rec = recommend(runtime, roi_id)
    print(rec.render())
    print()
    print("reading the classes:")
    print("  - weights[] is Input: each invocation only reads it;")
    print("  - last_probe is Output: written first, consumed outside;")
    print("  - best is State: the RAW state dependence STATS satisfies")
    print("    with its own execution model;")
    print("  - probe is declared locally in the extracted function.")


if __name__ == "__main__":
    main()
