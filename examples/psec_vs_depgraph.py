#!/usr/bin/env python3
"""Figure 2: why PSEC beats dependence-graph/memory-footprint analyses.

The loop reads ``a[i]`` and writes ``a[j]`` where j takes the values
{1, 0, 0, 2, 3, ..., N-2}.  A dependence-graph tool sees loads and stores of
*the object a* and must conservatively serialize the loop's hot computation;
PSEC characterizes every element separately and discovers that only ``a[1]``
participates in the cross-iteration RAW dependence, so only its accesses
need a critical section and the rest of the loop parallelizes.
"""

from repro.abstractions import recommend
from repro.compiler import compile_baseline, compile_carmot
from repro.parallel import profile_execution, simulate_parallel_for

N = 48

SOURCE = """
int a[@N@];
int sink = 0;

int pick_j(int i) {
  if (i == 0) return 1;
  if (i == 1 || i == 2) return 0;
  return i - 1;
}

void func() {
  #pragma carmot roi abstraction(parallel_for) name(fig2_loop)
  for (int i = 0; i < @N@; ++i) {
    int j = pick_j(i);
    int value = a[i];
    for (int w = 0; w < 16; ++w) value = (value * 7 + i) % 1000003;
    sink = sink + value % 3;
    a[j] = value;
  }
}

int main() {
  for (int k = 0; k < @N@; ++k) a[k] = k * k;
  func();
  print_int(a[0] + sink);
  return 0;
}
""".replace("@N@", str(N))


def main() -> None:
    program = compile_carmot(SOURCE, name="figure2")
    _, runtime = program.run()
    psec = runtime.psecs[0]

    transfer_elements = [
        key[2] // key[3]
        for key in psec.sets()["transfer"]
        if key[0] == "mem"
    ]
    print(f"elements of a[] in the Transfer set: {transfer_elements}")
    print("  -> only these accesses need #pragma omp critical;")
    print("     a dependence graph would have serialized the whole body.\n")

    print(recommend(runtime, 0).render())

    # Simulated performance of the two pragma styles.
    baseline = compile_baseline(SOURCE, name="figure2")
    profile = profile_execution(baseline.module)
    loop = profile.loops[0]
    psec_pragma = simulate_parallel_for(loop.iteration_costs,
                                        serial_fraction=0.08)
    conservative = simulate_parallel_for(loop.iteration_costs,
                                         serial_fraction=0.95)
    print(f"\nserial loop cost            : {loop.total_cost}")
    print(f"PSEC pragma (tiny critical) : {loop.total_cost / psec_pragma:.2f}x"
          " speedup")
    print(f"dep-graph pragma (serial)   : "
          f"{loop.total_cost / conservative:.2f}x speedup")


if __name__ == "__main__":
    main()
